package pdsat_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/pdsat"
)

// neighborhoodEvents filters a job's event stream down to its
// NeighborhoodDone events.
func neighborhoodEvents(events []pdsat.Event) []pdsat.NeighborhoodDone {
	var out []pdsat.NeighborhoodDone
	for _, e := range events {
		if nb, ok := e.(pdsat.NeighborhoodDone); ok {
			out = append(out, nb)
		}
	}
	return out
}

// TestSearchJobNeighborhoodEvents: a search job running the
// neighbourhood-parallel scheduler emits one NeighborhoodDone event per
// pass with internally consistent counters, and the passes account for the
// whole search trace; a sequential search job emits none.
func TestSearchJobNeighborhoodEvents(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	s := newTestSession(t, inst, 8)
	pol := pdsat.EvalPolicy{MaxConcurrentEvals: 4}
	job, err := s.Submit(context.Background(), pdsat.SearchJob{Method: "tabu", Policy: &pol})
	if err != nil {
		t.Fatal(err)
	}
	events := collect(t, job.Events())
	done := checkTerminated(t, events)
	if done.Err != "" || done.Cancelled {
		t.Fatalf("unexpected terminal event: %+v", done)
	}
	res, err := job.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Search == nil || res.Search.Result == nil {
		t.Fatal("search job without search result")
	}

	passes := neighborhoodEvents(events)
	if len(passes) == 0 {
		t.Fatal("concurrent search emitted no NeighborhoodDone events")
	}
	evaluated := 0
	for i, nb := range passes {
		if nb.Job != job.ID() || nb.Member != 0 {
			t.Fatalf("pass %d tagged %q/%d, want job %q member 0", i, nb.Job, nb.Member, job.ID())
		}
		if nb.Width != 4 {
			t.Fatalf("pass %d width %d, want 4", i, nb.Width)
		}
		if nb.Candidates <= 0 || nb.Radius <= 0 || len(nb.Center) == 0 {
			t.Fatalf("pass %d degenerate: %+v", i, nb)
		}
		if nb.Evaluated < 0 || nb.Pruned < 0 || nb.Cancelled < 0 ||
			nb.Evaluated+nb.Cancelled > nb.Candidates {
			t.Fatalf("pass %d counters inconsistent: %+v", i, nb)
		}
		evaluated += nb.Evaluated
	}
	// Every trace entry after the start evaluation belongs to some pass.
	if want := len(res.Search.Result.Trace) - 1; evaluated != want {
		t.Fatalf("passes account for %d evaluations, trace has %d", evaluated, want)
	}
	if last := passes[len(passes)-1]; last.BestValue != res.Search.Result.BestValue {
		t.Fatalf("final pass best %v, result best %v", last.BestValue, res.Search.Result.BestValue)
	}

	// The sequential loop (no policy override, session policy zero) must
	// not emit any.
	seq, err := s.Submit(context.Background(), pdsat.SearchJob{Method: "tabu"})
	if err != nil {
		t.Fatal(err)
	}
	seqEvents := collect(t, seq.Events())
	checkTerminated(t, seqEvents)
	if n := len(neighborhoodEvents(seqEvents)); n != 0 {
		t.Fatalf("sequential search emitted %d NeighborhoodDone events", n)
	}
}

// TestSessionStatsSampleLedger: the session-level sample ledger balances
// exactly across estimate and concurrent search jobs — every planned Monte
// Carlo sample is accounted as solved, aborted, or skipped.
func TestSessionStatsSampleLedger(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	pol := pdsat.DefaultEvalPolicy()
	pol.MaxConcurrentEvals = 4
	s, err := pdsat.NewSession(pdsat.FromInstance(inst), policyConfig(12, pol))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.EstimateStartSet(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SearchTabu(ctx); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SamplesPlanned <= 0 || st.Evaluations <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.SamplesPlanned != st.SubproblemsSolved+st.SubproblemsAborted+st.SamplesSkipped {
		t.Fatalf("sample ledger out of balance: planned %d != solved %d + aborted %d + skipped %d",
			st.SamplesPlanned, st.SubproblemsSolved, st.SubproblemsAborted, st.SamplesSkipped)
	}
	// The default policy saves work: not every planned sample is solved to
	// completion.
	if st.SubproblemsSolved >= st.SamplesPlanned {
		t.Fatalf("policy saved nothing: %d solved of %d planned", st.SubproblemsSolved, st.SamplesPlanned)
	}
}

// TestServerConcurrentSearchStream drives the scheduler through the HTTP
// layer: the policy's max_concurrent_evals knob passes through POST
// /v1/jobs, and neighborhood_done events appear on the NDJSON stream.
func TestServerConcurrentSearchStream(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	s := newTestSession(t, inst, 8)
	ts := httptest.NewServer(pdsat.NewServer(s))
	defer ts.Close()

	created := postJSON(t, ts.URL+"/v1/jobs",
		`{"kind":"search","method":"tabu","policy":{"max_concurrent_evals":3}}`)
	id, _ := created["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", created)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type line struct {
		Event string `json:"event"`
		Data  struct {
			Job        string  `json:"job"`
			Width      int     `json:"width"`
			Candidates int     `json:"candidates"`
			BestValue  float64 `json:"best_value"`
		} `json:"data"`
	}
	var passes int
	var dones int
	var lastEvent string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lastEvent = l.Event
		switch l.Event {
		case "neighborhood_done":
			if l.Data.Job != id || l.Data.Width != 3 || l.Data.Candidates <= 0 {
				t.Fatalf("neighborhood_done payload: %+v", l.Data)
			}
			passes++
		case "done":
			dones++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if passes == 0 {
		t.Fatal("no neighborhood_done events on the stream")
	}
	if dones != 1 || lastEvent != "done" {
		t.Fatalf("stream must end with exactly one done event (got %d, last %q)", dones, lastEvent)
	}

	// The search result is reachable and the job finished cleanly.
	var status struct {
		State string `json:"state"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+id, &status)
	if status.State != "done" {
		t.Fatalf("job state %q", status.State)
	}

	// A negative width is rejected at submission, like any invalid policy.
	bad, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"search","policy":{"max_concurrent_evals":-2}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative concurrency accepted: status %d", bad.StatusCode)
	}
}

// TestConcurrentSearchJobCancel: cancelling a concurrent search
// mid-neighbourhood unwinds the frontier, terminates the stream with a
// single Done event, returns the partial result, and leaves the session's
// sample ledger balanced.
func TestConcurrentSearchJobCancel(t *testing.T) {
	inst := testInstance(t, 48, 40, 3)
	pol := pdsat.DefaultEvalPolicy()
	pol.MaxConcurrentEvals = 4
	s, err := pdsat.NewSession(pdsat.FromInstance(inst), policyConfig(24, pol))
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(context.Background(), pdsat.SearchJob{Method: "tabu"})
	if err != nil {
		t.Fatal(err)
	}
	events := job.Events()
	select {
	case <-events:
	case <-time.After(60 * time.Second):
		t.Fatal("no progress before cancel")
	}
	job.Cancel()
	all := collect(t, events)
	done := checkTerminated(t, all)
	if !done.Cancelled {
		t.Fatalf("terminal event not marked cancelled: %+v", done)
	}
	res, _ := job.Result(context.Background())
	if res == nil || res.Search == nil || res.Search.Result == nil {
		t.Fatalf("cancelled search should return a partial result, got %+v", res)
	}
	if res.Search.Result.Stop != pdsat.StopContext {
		t.Fatalf("stop reason %q, want %q", res.Search.Result.Stop, pdsat.StopContext)
	}
	st := s.Stats()
	if st.SamplesPlanned != st.SubproblemsSolved+st.SubproblemsAborted+st.SamplesSkipped {
		t.Fatalf("ledger out of balance after cancel: %+v", st)
	}
}

// TestFleetNeighborhoodEventsTagged: in a fleet race every member's
// scheduler passes arrive member-tagged on the shared event stream.
func TestFleetNeighborhoodEventsTagged(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	pol := pdsat.EvalPolicy{MaxConcurrentEvals: 2}
	s, err := pdsat.NewSession(pdsat.FromInstance(inst), fleetTestConfig(8, &pol))
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(context.Background(), pdsat.FleetJob{
		Members: []pdsat.FleetMemberSpec{{Method: "tabu"}, {Method: "tabu"}},
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := collect(t, job.Events())
	checkTerminated(t, events)
	seen := map[int]int{}
	for _, nb := range neighborhoodEvents(events) {
		if nb.Job != job.ID() || nb.Width != 2 {
			t.Fatalf("fleet pass mis-tagged: %+v", nb)
		}
		seen[nb.Member]++
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Fatalf("passes not reported for every member: %v", seen)
	}
}
