package pdsat

import (
	"errors"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/eval"
	"github.com/paper-repro/pdsat-go/internal/montecarlo"
	"github.com/paper-repro/pdsat-go/internal/optimize"
	runner "github.com/paper-repro/pdsat-go/internal/pdsat"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// The library's substrate lives in internal/ packages; the aliases below
// re-export the types a caller needs to configure a Session and interpret
// its results, so the public surface is importable from outside the module.

// Var identifies a CNF variable (1-based, as in DIMACS).
type Var = cnf.Var

// Lit is a CNF literal: +v or -v for a variable v.
type Lit = cnf.Lit

// Formula is a CNF formula.
type Formula = cnf.Formula

// Assignment maps variables to truth values (a model when total).
type Assignment = cnf.Assignment

// Point is the indicator vector of a decomposition set over a search Space.
type Point = decomp.Point

// Space is the ordered universe of candidate decomposition variables.
type Space = decomp.Space

// Estimate is a Monte Carlo estimate of the predictive function
// (F = 2^d · mean over a random sample of subproblem costs).
type Estimate = montecarlo.Estimate

// RunnerConfig configures the leader/worker runner backing a Session:
// sample size, workers, seed, cost metric, solver options and an optional
// cluster transport.
type RunnerConfig = runner.Config

// SolveOptions configure family processing (stop-on-SAT, subproblem cap).
type SolveOptions = runner.SolveOptions

// SolveReport is the outcome of processing a whole decomposition family.
type SolveReport = runner.SolveReport

// SearchOptions configure the metaheuristic minimizers (radius, budgets,
// seed, annealing schedule).
type SearchOptions = optimize.Options

// SearchResult is the raw optimizer outcome (best point, trace, stop
// reason).
type SearchResult = optimize.Result

// StopReason describes why a search terminated.
type StopReason = optimize.StopReason

// Search stop reasons, re-exported from the optimizer.
const (
	StopTime         = optimize.StopTime
	StopEvaluations  = optimize.StopEvaluations
	StopTemperature  = optimize.StopTemperature
	StopExhausted    = optimize.StopExhausted
	StopContext      = optimize.StopContext
	StopNoImprovment = optimize.StopNoImprovment
	StopTarget       = optimize.StopTarget
)

// Transport decides where subproblem batches run; see NewInprocTransport
// and the cluster leader in cmd/pdsat for the two built-in backends.
type Transport = cluster.Transport

// CostMetric selects the cost unit ζ of the predictive function.
type CostMetric = solver.CostMetric

// SolverOptions configure the per-subproblem CDCL solver.
type SolverOptions = solver.Options

// SolverStats are aggregated CDCL solver counters (conflicts, propagations,
// learned-clause tiers, arena size); see Session.Stats and RunnerStats.
type SolverStats = solver.Stats

// Budget bounds the effort spent on a single subproblem.
type Budget = solver.Budget

// EvalPolicy configures the budget-aware evaluation engine: incumbent
// pruning, staged adaptive sampling and the cross-search F-cache.  The zero
// value disables all three and reproduces full-sample evaluations bit for
// bit; DefaultEvalPolicy returns the recommended settings.  Set it on the
// session (RunnerConfig.Policy) or per job (EstimateJob.Policy,
// SearchJob.Policy).
type EvalPolicy = eval.Policy

// EvalCacheStats are the cross-search F-cache's hit/miss/size counters
// (see Session.Stats).
type EvalCacheStats = eval.CacheStats

// DefaultEvalPolicy returns the recommended evaluation policy: pruning on,
// three sample stages with a 10% relative-precision early stop at γ=0.95,
// and the F-cache enabled.
func DefaultEvalPolicy() EvalPolicy { return eval.DefaultPolicy() }

// GeneratorConfig configures an on-the-fly cryptanalysis instance (see
// FromGenerator): keystream length, number of known trailing state bits and
// the secret's seed.
type GeneratorConfig = encoder.Config

// Cost metrics, re-exported from the solver.
const (
	CostConflicts    = solver.CostConflicts
	CostPropagations = solver.CostPropagations
	CostDecisions    = solver.CostDecisions
	CostWallTime     = solver.CostWallTime
)

// Problem is a SAT instance plus the starting decomposition set from which
// partitionings are searched.
type Problem struct {
	// Name identifies the problem in reports.
	Name string
	// Formula is the CNF to be partitioned.
	Formula *Formula
	// StartSet is X̃_start, the initial decomposition set (for cryptanalysis
	// instances: the unknown circuit-input variables, a Strong
	// Unit-Propagation Backdoor Set).
	StartSet []Var
	// Instance optionally carries the cryptanalysis metadata (secret,
	// keystream) enabling end-to-end key checks.
	Instance *encoder.Instance
}

// FromInstance wraps a cryptanalysis instance as a Problem; the start set is
// the instance's unknown start variables.
func FromInstance(inst *encoder.Instance) *Problem {
	return &Problem{
		Name:     inst.Name,
		Formula:  inst.CNF,
		StartSet: inst.UnknownStartVars(),
		Instance: inst,
	}
}

// FromFormula wraps an arbitrary CNF and starting set as a Problem.
func FromFormula(name string, f *Formula, start []Var) *Problem {
	return &Problem{Name: name, Formula: f, StartSet: append([]Var(nil), start...)}
}

// FromGenerator builds a cryptanalysis Problem on the fly from one of the
// paper's keystream generators ("a5/1", "bivium" or "grain").
func FromGenerator(name string, cfg GeneratorConfig) (*Problem, error) {
	gen, err := encoder.ByName(name)
	if err != nil {
		return nil, err
	}
	inst, err := encoder.NewInstance(gen, cfg)
	if err != nil {
		return nil, err
	}
	return FromInstance(inst), nil
}

// FromDIMACSFile parses a DIMACS CNF file and wraps it as a Problem with
// the given starting decomposition set.
func FromDIMACSFile(path string, start []Var) (*Problem, error) {
	f, err := cnf.ParseDIMACSFile(path)
	if err != nil {
		return nil, err
	}
	if len(start) == 0 {
		return nil, errors.New("pdsat: empty starting decomposition set")
	}
	return FromFormula(path, f, start), nil
}

// Space returns the search space over the problem's start set.
func (p *Problem) Space() *Space { return decomp.NewSpace(p.StartSet) }

// NewInprocTransport creates the default in-process transport explicitly:
// worker goroutines with persistent pooled solvers.  Sessions create one
// automatically when Config.Runner.Transport is nil; an explicit transport
// is useful to share a solver pool between sessions on the same formula.
func NewInprocTransport(f *Formula, workers int, opts SolverOptions) Transport {
	return cluster.NewInproc(f, workers, opts)
}
