// Package pdsatgo is a from-scratch Go reproduction of
//
//	A. Semenov, O. Zaikin — "Using Monte Carlo Method for Searching
//	Partitionings of Hard Variants of Boolean Satisfiability Problem"
//	(PaCT 2015, arXiv:1507.00862).
//
// The paper solves hard cryptanalysis SAT instances by partitioning: a
// decomposition set X̃ splits the instance C into the 2^|X̃| independent
// subproblems C[X̃/α], the total processing cost of a partitioning is
// estimated by the Monte Carlo method (a predictive function F = 2^d·mean
// over a random sample of subproblems), and metaheuristics minimize F over
// candidate decomposition sets.  See PAPER.md for a complete summary and
// README.md for the architecture and a quickstart.
//
// The public, importable surface is the top-level pdsat package
// (github.com/paper-repro/pdsat-go/pdsat): Problems, Sessions and
// asynchronous jobs (EstimateJob, SearchJob, FleetJob, SolveJob) with typed
// progress-event streams, plus an HTTP/JSON job server (cmd/pdsat -serve).
// FleetJob races several searches concurrently over one runner/cluster,
// coupled through a shared incumbent and the session F-cache (cmd/pdsat
// -fleet "tabu:4,sa:4").  See that package's documentation for the
// job/event model and the sub-seed reproducibility rule.
//
// The substrate lives in internal/ packages, layered bottom-up:
//
//   - cnf, cnfgen: propositional substrate and benchmark formulas
//   - circuit, crypto, encoder: A5/1, Bivium and Grain keystream
//     generators, their circuits and Tseitin CNF encodings
//   - solver: deterministic CDCL with assumptions, conflict activity and
//     reusable sessions (pristine Reset / incremental reuse)
//   - decomp, montecarlo, optimize: decomposition families, the predictive
//     function and its confidence intervals, simulated annealing and tabu
//     search, and the fleet orchestrator racing several searches over one
//     shared incumbent
//   - eval: the budget-aware evaluation engine — incumbent pruning of
//     hopeless candidates, staged adaptive sampling sized by the eq.-3
//     confidence interval, and the cross-search F-memoization cache
//     (policies are set via pdsat.EvalPolicy; the zero policy reproduces
//     full-sample evaluations bit for bit)
//   - cluster: worker transports for the leader/worker architecture — an
//     in-process goroutine pool with persistent solvers, and a TCP/gob
//     network backend (worker registration, heartbeats, batched task
//     streams, interrupt broadcast, worker-loss requeue)
//   - pdsat: the paper's MPI leader/worker program PDSAT on top of a
//     cluster transport (estimation and solving modes); cmd/pdsat
//     -listen/-join deploys it across machines
//   - portfolio, expts: the portfolio baseline and the experiment harness
//
// The command-line tools live in cmd/ (pdsat, keygen, dimacs, experiments)
// and runnable walkthroughs in examples/.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section at a laptop-friendly scale:
//
//	go test -bench=. -benchmem
package pdsatgo
