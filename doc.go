// Package repro is a from-scratch Go reproduction of
//
//	A. Semenov, O. Zaikin — "Using Monte Carlo Method for Searching
//	Partitionings of Hard Variants of Boolean Satisfiability Problem"
//	(PaCT 2015, arXiv:1507.00862).
//
// The library lives in internal/ packages (cnf, solver, circuit, crypto,
// encoder, decomp, montecarlo, optimize, pdsat, core, expts); the
// command-line tools live in cmd/ and runnable examples in examples/.  See
// README.md for a tour, DESIGN.md for the system inventory and scaling
// substitutions, and EXPERIMENTS.md for the reproduced tables and figures.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section at a laptop-friendly scale:
//
//	go test -bench=. -benchmem
package repro
