// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus micro-benchmarks of the substrates.  Each
// experiment benchmark runs the corresponding experiment from
// internal/expts at a reduced scale and reports the headline quantities
// (predictive-function values, deviations, points visited) as custom
// benchmark metrics, so a single
//
//	go test -bench=. -benchmem
//
// regenerates the paper-shaped results.  The absolute values are measured in
// deterministic solver effort (propagations) on weakened instances; see
// README.md and PAPER.md for the mapping to the paper's cluster-scale
// numbers.
package pdsatgo_test

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/cnfgen"
	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/eval"
	"github.com/paper-repro/pdsat-go/internal/expts"
	"github.com/paper-repro/pdsat-go/internal/optimize"
	"github.com/paper-repro/pdsat-go/internal/pdsat"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// benchScale returns the experiment scale used by the benchmark harness.
func benchScale(b *testing.B) expts.Scale {
	b.Helper()
	scale := expts.QuickScale()
	scale.Name = "bench"
	return scale
}

// BenchmarkTable1_A51DecompositionSets reproduces Table 1: the
// predictive-function values of the manual A5/1 decomposition set S1 and the
// sets S2/S3 found by simulated annealing and tabu search.
func BenchmarkTable1_A51DecompositionSets(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := expts.RunA51(ctx, scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.S1.F, "F_S1")
		b.ReportMetric(res.S2.F, "F_S2")
		b.ReportMetric(res.S3.F, "F_S3")
		b.ReportMetric(float64(res.S1.Power), "size_S1")
		b.ReportMetric(float64(res.S2.Power), "size_S2")
		b.ReportMetric(float64(res.S3.Power), "size_S3")
		if i == 0 {
			b.Log("\n" + res.Table1().String())
		}
	}
}

// BenchmarkFigure1_A51ManualSet reproduces Figure 1: the manual decomposition
// set S1 laid out over the three A5/1 registers.
func BenchmarkFigure1_A51ManualSet(b *testing.B) {
	scale := benchScale(b)
	for i := 0; i < b.N; i++ {
		inst, err := expts.A51Instance(scale, scale.Seed)
		if err != nil {
			b.Fatal(err)
		}
		set := expts.ManualA51Set(inst)
		b.ReportMetric(float64(len(set)), "set_size")
		if i == 0 {
			fig, err := expts.FindExperiment("fig1")
			if err != nil {
				b.Fatal(err)
			}
			tables, err := fig.Run(context.Background(), scale)
			if err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + tables[0].String())
		}
	}
}

// BenchmarkFigure2_A51SearchedSets reproduces Figures 2a/2b: the decomposition
// sets found by the two metaheuristics.
func BenchmarkFigure2_A51SearchedSets(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := expts.RunA51(ctx, scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SAEvaluations), "sa_points")
		b.ReportMetric(float64(res.TabuEvaluations), "tabu_points")
		if i == 0 {
			b.Log("\n" + res.Figure2().String())
		}
	}
}

// BenchmarkTable2_BiviumEstimates reproduces Table 2: three time estimations
// for the Bivium cryptanalysis problem (fixed strategy, solver-activity set,
// PDSAT tabu search) with increasing sample sizes.
func BenchmarkTable2_BiviumEstimates(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := expts.RunBivium(ctx, scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fixed.F, "F_fixed")
		b.ReportMetric(res.ActivityGuided.F, "F_activity")
		b.ReportMetric(res.Searched.F, "F_searched")
		if i == 0 {
			b.Log("\n" + res.Table2().String())
		}
	}
}

// BenchmarkFigure3_BiviumSet reproduces Figure 3: the Bivium decomposition
// set found by the tabu search, laid out over the two registers.
func BenchmarkFigure3_BiviumSet(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := expts.RunBivium(ctx, scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Searched.Power), "set_size")
		b.ReportMetric(res.Searched.F, "F_searched")
		if i == 0 {
			b.Log("\n" + res.Figure3().String())
		}
	}
}

// BenchmarkFigure4_GrainSet reproduces Figure 4: the Grain decomposition set
// found by the tabu search and its NFSR/LFSR split (the paper's set lies
// entirely in the LFSR).
func BenchmarkFigure4_GrainSet(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := expts.RunGrain(ctx, scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Searched.Power), "set_size")
		b.ReportMetric(float64(res.LFSRCount), "lfsr_vars")
		b.ReportMetric(float64(res.NFSRCount), "nfsr_vars")
		b.ReportMetric(res.Searched.F, "F_searched")
		if i == 0 {
			b.Log("\n" + res.Figure4().String())
		}
	}
}

// BenchmarkTable3_WeakenedSolving reproduces Table 3: weakened BiviumK/GrainK
// problems solved completely, with the measured family-processing cost
// compared against the Monte Carlo prediction (the paper reports an average
// deviation of about 8%).
func BenchmarkTable3_WeakenedSolving(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := expts.RunTable3(ctx, scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MeanDeviation, "mean_deviation_%")
		b.ReportMetric(float64(len(res.Rows)), "problems")
		if i == 0 {
			b.Log("\n" + res.Table3().String())
		}
	}
}

// BenchmarkMonteCarloConvergence validates eq. (2)/(3): the Monte Carlo
// estimate approaches the exhaustively computed family cost as the sample
// grows.
func BenchmarkMonteCarloConvergence(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := expts.RunConvergence(ctx, scale)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) > 0 {
			b.ReportMetric(100*res.Points[len(res.Points)-1].Deviation, "final_deviation_%")
		}
		if i == 0 {
			b.Log("\n" + res.TableConvergence().String())
		}
	}
}

// BenchmarkSAvsTabu reproduces the Section 4.3 remark: under an equal
// evaluation budget, tabu search visits at least as many distinct points as
// simulated annealing (it never re-evaluates a point).
func BenchmarkSAvsTabu(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := expts.RunSAvsTabu(ctx, scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SAPoints), "sa_points")
		b.ReportMetric(float64(res.TabuPoints), "tabu_points")
		b.ReportMetric(res.SABest, "sa_bestF")
		b.ReportMetric(res.TabuBest, "tabu_bestF")
		if i == 0 {
			b.Log("\n" + res.TableSAvsTabu().String())
		}
	}
}

// BenchmarkSolverAblation measures the CDCL configuration ablation
// (restarts, phase saving, clause minimization on/off).
func BenchmarkSolverAblation(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := expts.RunSolverAblation(ctx, scale)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) > 0 {
			b.ReportMetric(res.Rows[0].MeanCost, "default_mean_cost")
		}
		if i == 0 {
			b.Log("\n" + res.TableAblation().String())
		}
	}
}

// BenchmarkPortfolioVsPartitioning compares the portfolio baseline with the
// partitioning approach on the same weakened A5/1 instance (Section 1
// context: partitioning additionally offers a runtime prediction).
func BenchmarkPortfolioVsPartitioning(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := expts.RunPortfolioVsPartitioning(ctx, scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PortfolioCost, "portfolio_cost")
		b.ReportMetric(res.PartitioningCost, "partitioning_cost")
		if i == 0 {
			b.Log("\n" + res.TablePortfolio().String())
		}
	}
}

// BenchmarkEvalPolicyBiviumTabu measures the budget-aware evaluation
// engine (PR 4) on a Table-2-style weakened-Bivium tabu search: the same
// fixed-seed search once with the zero policy (every evaluation solves the
// full sample, the pre-engine behaviour) and once with the default policy
// (incumbent pruning + staged adaptive sampling + F-cache).  The headline
// metrics are the solved-subproblem counts per search and the reduction;
// the acceptance bar is a ≥30% reduction at equal best F, which the
// benchmark enforces.
func BenchmarkEvalPolicyBiviumTabu(b *testing.B) {
	inst, err := encoder.NewInstance(encoder.Bivium(), encoder.Config{
		KeystreamLen: 200,
		KnownSuffix:  160,
		Seed:         7,
	})
	if err != nil {
		b.Fatal(err)
	}
	space := decomp.NewSpace(inst.UnknownStartVars())
	run := func(pol eval.Policy) (float64, int) {
		r := pdsat.NewRunner(inst.CNF, pdsat.Config{
			SampleSize: 30,
			Seed:       3,
			CostMetric: solver.CostPropagations,
			Policy:     pol,
		})
		res, err := optimize.TabuSearch(context.Background(), r, space.FullPoint(),
			optimize.Options{Seed: 5, MaxEvaluations: 60})
		if err != nil {
			b.Fatal(err)
		}
		return res.BestValue, r.SubproblemsSolved()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bestOff, solvedOff := run(eval.Policy{})
		bestOn, solvedOn := run(eval.DefaultPolicy())
		if bestOn != bestOff {
			b.Fatalf("best F differs with the default policy: %v vs %v", bestOn, bestOff)
		}
		reduction := 100 * (1 - float64(solvedOn)/float64(solvedOff))
		if reduction < 30 {
			b.Fatalf("default policy saved only %.1f%% of subproblems (acceptance bar: 30%%)", reduction)
		}
		b.ReportMetric(float64(solvedOff), "subproblems_policy_off")
		b.ReportMetric(float64(solvedOn), "subproblems_policy_on")
		b.ReportMetric(reduction, "subproblem_reduction_%")
		b.ReportMetric(bestOn, "bestF")
	}
}

// BenchmarkFleetBiviumTabu measures the search-fleet coupling (PR 5) on a
// weakened-Bivium instance: the same four fixed-sub-seed searches (tabu:2,
// sa:2, default evaluation policy) run once sequentially with isolated
// incumbents and per-search F-caches, and once as a concurrent fleet
// sharing one incumbent and one cache over a single runner.  The headline
// metrics are the solved-subproblem totals and the reduction; the
// acceptance bar — which the benchmark enforces — is that the shared-
// incumbent fleet solves at least 10% fewer subproblems than the isolated
// sequential baseline.
func BenchmarkFleetBiviumTabu(b *testing.B) {
	inst, err := encoder.NewInstance(encoder.Bivium(), encoder.Config{
		KeystreamLen: 200,
		KnownSuffix:  160,
		Seed:         7,
	})
	if err != nil {
		b.Fatal(err)
	}
	space := decomp.NewSpace(inst.UnknownStartVars())
	const (
		root    = int64(3)
		members = 4
		evals   = 15
		sample  = 30
	)
	pol := eval.DefaultPolicy()
	method := func(i int) string {
		if i >= members/2 {
			return optimize.MethodSA
		}
		return optimize.MethodTabu
	}
	newRunner := func(seed int64) *pdsat.Runner {
		return pdsat.NewRunner(inst.CNF, pdsat.Config{
			SampleSize: sample,
			Seed:       seed,
			CostMetric: solver.CostPropagations,
		})
	}

	runSequential := func() int {
		total := 0
		for i := 0; i < members; i++ {
			r := newRunner(optimize.SubSeed(root, 3*i))
			eng := eval.NewEngine(r, pol, eval.NewCache()) // isolated cache
			obj := &fleetBenchObjective{engine: eng, activity: r.VarActivity}
			var err error
			switch method(i) {
			case optimize.MethodSA:
				_, err = optimize.SimulatedAnnealing(context.Background(), obj, space.FullPoint(),
					optimize.Options{Seed: optimize.SubSeed(root, 3*i+1), MaxEvaluations: evals})
			default:
				_, err = optimize.TabuSearch(context.Background(), obj, space.FullPoint(),
					optimize.Options{Seed: optimize.SubSeed(root, 3*i+1), MaxEvaluations: evals})
			}
			if err != nil {
				b.Fatal(err)
			}
			total += r.SubproblemsSolved()
		}
		return total
	}

	runFleet := func() int {
		r := newRunner(1)
		cache := eval.NewCache() // shared across the whole fleet
		fleet := make([]optimize.FleetMember, members)
		for i := 0; i < members; i++ {
			scope := r.NewScope(optimize.SubSeed(root, 3*i))
			eng := eval.NewEngine(scope, pol, cache)
			fleet[i] = optimize.FleetMember{
				Method:    method(i),
				Objective: &fleetBenchObjective{engine: eng, activity: scope.VarActivity},
				Start:     space.FullPoint(),
				Opts:      optimize.Options{Seed: optimize.SubSeed(root, 3*i+1), MaxEvaluations: evals},
			}
		}
		fr, err := optimize.RunFleet(context.Background(), fleet, optimize.FleetOptions{KeepRacing: true})
		if err != nil {
			b.Fatal(err)
		}
		if fr.Best < 0 {
			b.Fatal("fleet found no best point")
		}
		return r.SubproblemsSolved()
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sequential := runSequential()
		shared := runFleet()
		reduction := 100 * (1 - float64(shared)/float64(sequential))
		if reduction < 10 {
			b.Fatalf("shared-incumbent fleet saved only %.1f%% of subproblems over the isolated sequential baseline (acceptance bar: 10%%): %d vs %d",
				reduction, shared, sequential)
		}
		b.ReportMetric(float64(sequential), "subproblems_sequential")
		b.ReportMetric(float64(shared), "subproblems_fleet")
		b.ReportMetric(reduction, "fleet_reduction_%")
	}
}

// fleetBenchObjective adapts an evaluation engine plus an activity source
// as an optimizer objective for the fleet benchmark.
type fleetBenchObjective struct {
	engine   *eval.Engine
	activity func(cnf.Var) float64
}

func (o *fleetBenchObjective) Evaluate(ctx context.Context, p decomp.Point) (float64, error) {
	ev, err := o.engine.EvaluateF(ctx, p, math.Inf(1))
	if err != nil {
		return 0, err
	}
	return ev.Value, nil
}

func (o *fleetBenchObjective) EvaluateF(ctx context.Context, p decomp.Point, incumbent float64) (*eval.Evaluation, error) {
	return o.engine.EvaluateF(ctx, p, incumbent)
}

func (o *fleetBenchObjective) VarActivity(v cnf.Var) float64 { return o.activity(v) }

// ReserveSlots and EvaluateSlotF expose the engine's deterministic
// evaluation slots, which the neighbourhood scheduler uses to keep every
// candidate's Monte Carlo sample independent of completion order.
func (o *fleetBenchObjective) ReserveSlots(n int) (int, bool) { return o.engine.ReserveSlots(n) }

func (o *fleetBenchObjective) EvaluateSlotF(ctx context.Context, p decomp.Point, incumbent float64, slot int) (*eval.Evaluation, error) {
	return o.engine.EvaluateSlotF(ctx, p, incumbent, slot)
}

// BenchmarkNeighborhoodBiviumTabu measures the neighbourhood-parallel
// evaluation scheduler (PR 6) on a weakened-Bivium tabu search: the same
// fixed-seed search once through the sequential evaluation loop
// (MaxConcurrentEvals = 0) and once through the scheduler with eight
// candidate evaluations in flight over a 4-worker in-process transport.
// The zero evaluation policy keeps both arms solving identical full
// samples, so the scheduler's determinism rule guarantees an equal best F
// — which the benchmark enforces unconditionally.  The headline metrics
// are the two wall-clock times and the reduction; the acceptance bar of a
// ≥25% wall-clock reduction is enforced whenever the host actually has
// the four CPUs the four workers need (a single-core host cannot speed up
// CPU-bound solving by overlapping it, so there the bar is reported but
// not enforced).
func BenchmarkNeighborhoodBiviumTabu(b *testing.B) {
	inst, err := encoder.NewInstance(encoder.Bivium(), encoder.Config{
		KeystreamLen: 200,
		KnownSuffix:  160,
		Seed:         7,
	})
	if err != nil {
		b.Fatal(err)
	}
	space := decomp.NewSpace(inst.UnknownStartVars())
	const (
		workers = 4
		sample  = 6
		evals   = 40
		width   = 8
	)
	// Both arms share one in-process transport: pristine batches reset every
	// pooled solver, so fixed-seed results are bit-independent of the
	// pooling, and a warm-up run below pre-builds the solver pool the
	// concurrent arm needs (width × workers goroutines at peak) so neither
	// timed arm pays clause-database construction.
	transport := cluster.NewInproc(inst.CNF, workers, solver.Options{})
	run := func(concurrency int) (float64, int, time.Duration) {
		r := pdsat.NewRunner(inst.CNF, pdsat.Config{
			SampleSize: sample,
			Seed:       3,
			CostMetric: solver.CostPropagations,
			Transport:  transport,
		})
		eng := eval.NewEngine(r, eval.Policy{}, eval.NewCache())
		obj := &fleetBenchObjective{engine: eng, activity: r.VarActivity}
		start := time.Now()
		res, err := optimize.TabuSearch(context.Background(), obj, space.FullPoint(),
			optimize.Options{Seed: 5, MaxEvaluations: evals, MaxConcurrentEvals: concurrency})
		if err != nil {
			b.Fatal(err)
		}
		return res.BestValue, r.SubproblemsSolved(), time.Since(start)
	}
	run(width) // warm the solver pool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Three paired runs per iteration smooth scheduling noise out of the
		// CI gate; the determinism claim (equal best F) is checked per pair.
		const reps = 3
		var bestSeq, bestConc float64
		var solvedSeq, solvedConc int
		var wallSeq, wallConc time.Duration
		for rep := 0; rep < reps; rep++ {
			var sSeq, sConc int
			var wSeq, wConc time.Duration
			bestSeq, sSeq, wSeq = run(0)
			bestConc, sConc, wConc = run(width)
			if bestConc != bestSeq {
				b.Fatalf("best F differs under the scheduler: %v vs %v", bestConc, bestSeq)
			}
			solvedSeq, solvedConc = sSeq, sConc
			wallSeq += wSeq
			wallConc += wConc
		}
		reduction := 100 * (1 - wallConc.Seconds()/wallSeq.Seconds())
		if runtime.NumCPU() >= workers {
			if reduction < 25 {
				b.Fatalf("scheduler reduced wall clock by only %.1f%% on %d CPUs (acceptance bar: 25%%): %v vs %v",
					reduction, runtime.NumCPU(), wallConc, wallSeq)
			}
		} else {
			b.Logf("only %d CPU(s): wall-clock bar not enforceable (measured %.1f%% reduction)",
				runtime.NumCPU(), reduction)
		}
		b.ReportMetric(wallSeq.Seconds()*1e3/reps, "wall_sequential_ms")
		b.ReportMetric(wallConc.Seconds()*1e3/reps, "wall_concurrent_ms")
		b.ReportMetric(reduction, "wall_reduction_%")
		b.ReportMetric(float64(solvedSeq), "subproblems_sequential")
		b.ReportMetric(float64(solvedConc), "subproblems_concurrent")
		b.ReportMetric(bestConc, "bestF")
	}
}

// BenchmarkStragglerBiviumEstimate measures the adaptive dispatch layer
// (PR 10) on a Table-2-style weakened-Bivium estimate over a real 4-worker
// loopback cluster in which one worker is a straggler (an injected half-
// second stall before every task it starts).  The same fixed-seed estimate
// runs once with fixed dispatch — the batch tail waits out the straggler's
// queue — and once with work stealing, speculative re-dispatch and the
// variance-aware batching they activate.  The determinism rule is enforced
// unconditionally: both arms (and a pure in-process reference) must produce
// the bit-identical F, since the policies may only move subproblems between
// workers.  The acceptance bar of a ≥25% wall-clock reduction is enforced
// whenever the host has the CPUs the workers need (on fewer cores the
// healthy workers' solving serializes, so the bar is reported, not
// enforced).
func BenchmarkStragglerBiviumEstimate(b *testing.B) {
	inst, err := encoder.NewInstance(encoder.Bivium(), encoder.Config{
		KeystreamLen: 200,
		KnownSuffix:  160,
		Seed:         7,
	})
	if err != nil {
		b.Fatal(err)
	}
	space := decomp.NewSpace(inst.UnknownStartVars())
	point := space.FullPoint()
	const (
		workers = 4
		sample  = 24
		stall   = 500 * time.Millisecond
	)

	leader, err := cluster.Listen("127.0.0.1:0", inst.CNF, cluster.LeaderOptions{
		Heartbeat: 200 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer leader.Close()
	addr := leader.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The straggler registers first, so fixed dispatch hands it the head of
	// every batch.
	go func() {
		_ = cluster.Serve(ctx, addr, cluster.WorkerOptions{
			Capacity: 1, Name: "straggler",
			TaskDelay: func(cluster.Task) time.Duration { return stall },
		})
	}()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer waitCancel()
	if err := leader.WaitForWorkers(waitCtx, 1); err != nil {
		b.Fatal(err)
	}
	for i := 1; i < workers; i++ {
		go func() {
			_ = cluster.Serve(ctx, addr, cluster.WorkerOptions{Capacity: 1})
		}()
	}
	if err := leader.WaitForWorkers(waitCtx, workers); err != nil {
		b.Fatal(err)
	}

	run := func(adaptive bool) (*pdsat.Runner, float64, time.Duration) {
		r := pdsat.NewRunner(inst.CNF, pdsat.Config{
			SampleSize: sample,
			Seed:       3,
			CostMetric: solver.CostPropagations,
			Transport:  leader,
			Steal:      adaptive,
			Speculate:  adaptive,
		})
		start := time.Now()
		res, err := r.EvaluatePoint(context.Background(), point)
		if err != nil {
			b.Fatal(err)
		}
		return r, res.Estimate.Value, time.Since(start)
	}

	// Pure in-process reference for the determinism gate.
	ref := pdsat.NewRunner(inst.CNF, pdsat.Config{
		SampleSize: sample,
		Seed:       3,
		CostMetric: solver.CostPropagations,
		Workers:    2,
	})
	refRes, err := ref.EvaluatePoint(context.Background(), point)
	if err != nil {
		b.Fatal(err)
	}

	run(true) // warm the worker-side solver pools
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, fFixed, wallFixed := run(false)
		r, fAdaptive, wallAdaptive := run(true)
		if fFixed != refRes.Estimate.Value || fAdaptive != refRes.Estimate.Value {
			b.Fatalf("F drifted across dispatch modes: fixed %v, adaptive %v, in-process %v",
				fFixed, fAdaptive, refRes.Estimate.Value)
		}
		if r.TasksStolen()+r.SpeculationWins() == 0 {
			b.Fatalf("adaptive dispatch never engaged against the straggler (stolen=%d, wins=%d)",
				r.TasksStolen(), r.SpeculationWins())
		}
		reduction := 100 * (1 - wallAdaptive.Seconds()/wallFixed.Seconds())
		if runtime.NumCPU() >= workers {
			if reduction < 25 {
				b.Fatalf("adaptive dispatch cut the straggler wall clock by only %.1f%% on %d CPUs (acceptance bar: 25%%): %v vs %v",
					reduction, runtime.NumCPU(), wallAdaptive, wallFixed)
			}
		} else {
			b.Logf("only %d CPU(s): wall-clock bar not enforceable (measured %.1f%% reduction)",
				runtime.NumCPU(), reduction)
		}
		b.ReportMetric(wallFixed.Seconds()*1e3, "wall_fixed_ms")
		b.ReportMetric(wallAdaptive.Seconds()*1e3, "wall_adaptive_ms")
		b.ReportMetric(reduction, "wall_reduction_%")
		b.ReportMetric(float64(r.TasksStolen()), "tasks_stolen")
		b.ReportMetric(float64(r.SpeculativeDuplicates()), "speculative_duplicates")
		b.ReportMetric(float64(r.SpeculationWins()), "speculation_wins")
		b.ReportMetric(fAdaptive, "F")
	}
}

// --- substrate micro-benchmarks -----------------------------------------

// BenchmarkSolverPigeonhole measures raw CDCL performance on the classic
// UNSAT pigeonhole instance PHP(8,7).
func BenchmarkSolverPigeonhole(b *testing.B) {
	f, err := cnfgen.Pigeonhole(8, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := solver.NewDefault(f).Solve()
		if res.Status != solver.Unsat {
			b.Fatalf("PHP(8,7) must be UNSAT, got %v", res.Status)
		}
	}
}

// BenchmarkSolverRandom3SAT measures CDCL performance on random 3-SAT below
// the phase transition.
func BenchmarkSolverRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	formulas := make([]*cnf.Formula, 8)
	for i := range formulas {
		f, err := cnfgen.Random3SAT(rng, 120, 4.2)
		if err != nil {
			b.Fatal(err)
		}
		formulas[i] = f
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := solver.NewDefault(formulas[i%len(formulas)]).Solve()
		if res.Status == solver.Unknown {
			b.Fatal("unexpected unknown")
		}
	}
}

// BenchmarkEncoderBivium measures the circuit construction and Tseitin
// encoding of a full Bivium cryptanalysis instance.
func BenchmarkEncoderBivium(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst, err := encoder.NewInstance(encoder.Bivium(), encoder.Config{KeystreamLen: 200, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if inst.CNF.NumClauses() == 0 {
			b.Fatal("empty encoding")
		}
	}
}

// BenchmarkPredictiveFunctionEvaluation measures one Monte Carlo evaluation
// of the predictive function on a weakened A5/1 instance (the inner loop of
// every search).
func BenchmarkPredictiveFunctionEvaluation(b *testing.B) {
	inst, err := encoder.NewInstance(encoder.A51(), encoder.Config{KeystreamLen: 48, KnownSuffix: 46, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	space := decomp.NewSpace(inst.UnknownStartVars())
	point := space.FullPoint()
	runner := pdsat.NewRunner(inst.CNF, pdsat.Config{
		SampleSize: 20,
		Seed:       5,
		CostMetric: solver.CostPropagations,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.EvaluatePoint(context.Background(), point); err != nil {
			b.Fatal(err)
		}
	}
}
