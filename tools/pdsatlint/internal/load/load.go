// Package load turns `go list -export` output into type-checked syntax
// trees.  It is the loading half of the multichecker: golang.org/x/tools
// (go/packages) is unavailable offline, so the same job is done with the
// go command itself — `go list -export -deps -json` enumerates the target
// packages plus the export-data files of every dependency (the go command
// compiles them into the build cache on demand, no network needed), and
// go/types checks the targets from source with an importer that reads
// those export files.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is the subset of `go list -json` a lint run needs.
type Package struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Error      *PackageError
}

// PackageError is go list's per-package error report.
type PackageError struct {
	Err string
}

// Checked is one type-checked target package.
type Checked struct {
	Pkg   *Package
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader lists and type-checks packages.  One Loader shares a FileSet and
// an export-data importer across all packages it checks.
type Loader struct {
	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// List runs `go list -export -deps -json` on the patterns in dir and
// returns a Loader plus the non-standard-library target packages (the
// ones matching the patterns, as opposed to dependencies).
func List(dir string, patterns ...string) (*Loader, []*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=Dir,ImportPath,Name,GoFiles,Standard,DepOnly,Export,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	l := &Loader{Fset: token.NewFileSet(), exports: map[string]string{}}
	var targets []*Package
	dec := json.NewDecoder(&stdout)
	for {
		var p Package
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			pkg := p
			targets = append(targets, &pkg)
		}
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l, targets, nil
}

// StdImporter returns a Loader that can only type-check code whose
// imports resolve within the listed packages and their dependencies
// (typically standard-library packages).  The analysistest harness uses
// it to check fixture files.
func StdImporter(pkgs ...string) (*Loader, error) {
	l, _, err := List("", pkgs...)
	return l, err
}

func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// ParseFiles parses the named files (resolved against dir) with comments.
func (l *Loader) ParseFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// CheckFiles type-checks already-parsed files as one package with the
// given import path.
func (l *Loader) CheckFiles(importPath string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// Check parses and type-checks one target package from List.
func (l *Loader) Check(p *Package) (*Checked, error) {
	files, err := l.ParseFiles(p.Dir, p.GoFiles)
	if err != nil {
		return nil, err
	}
	pkg, info, err := l.CheckFiles(p.ImportPath, files)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Checked{Pkg: p, Files: files, Types: pkg, Info: info}, nil
}
