// Package analysistest is a golden-file harness in the style of
// golang.org/x/tools/go/analysis/analysistest: fixture packages live
// under testdata/src/<importpath>/, and every line that should produce a
// diagnostic carries a `// want "<regexp>"` comment.  The harness
// type-checks the fixture (standard-library imports are resolved through
// export data produced by `go list -export`, which works offline), runs
// one analyzer and diffs the reported diagnostics against the
// expectations.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/analysis"
	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/load"
)

// stdLoader is shared across tests: building the standard-library export
// map shells out to the go command once per process.
var (
	stdOnce   sync.Once
	stdLoader *load.Loader
	stdErr    error
)

func loader() (*load.Loader, error) {
	stdOnce.Do(func() {
		stdLoader, stdErr = load.StdImporter("std")
	})
	return stdLoader, stdErr
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one `// want "re"` entry.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package at testdata/src/<importPath>, applies
// the analyzer and checks the diagnostics against the fixture's
// `// want "re"` comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPath string) {
	t.Helper()
	l, err := loader()
	if err != nil {
		t.Fatalf("building standard-library importer: %v", err)
	}
	dir := filepath.Join(testdata, "src", filepath.FromSlash(importPath))
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	files, err := l.ParseFiles("", matches)
	if err != nil {
		t.Fatalf("parsing fixtures: %v", err)
	}
	pkg, info, err := l.CheckFiles(importPath, files)
	if err != nil {
		t.Fatalf("type-checking fixtures: %v", err)
	}

	// Expectations: file -> line -> entries.
	want := map[string]map[int][]*expectation{}
	for _, f := range files {
		addExpectations(t, l.Fset, f, want)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.Fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for _, d := range got {
		pos := l.Fset.Position(d.Pos)
		var match *expectation
		for _, exp := range want[pos.Filename][pos.Line] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				match = exp
				break
			}
		}
		if match == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		match.matched = true
	}
	for file, lines := range want {
		for line, exps := range lines {
			for _, exp := range exps {
				if !exp.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, exp.re)
				}
			}
		}
	}
}

// addExpectations parses `// want "re"` (one or more quoted regexps per
// comment) from a file's comments into the expectation map.
func addExpectations(t *testing.T, fset *token.FileSet, f *ast.File, want map[string]map[int][]*expectation) {
	t.Helper()
	for _, group := range f.Comments {
		for _, c := range group.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(m[1])
			for rest != "" {
				delim := rest[0]
				if delim != '"' && delim != '`' {
					t.Fatalf("%s: malformed want comment: %s", pos, c.Text)
				}
				end := 1
				for end < len(rest) && (rest[end] != delim || (delim == '"' && rest[end-1] == '\\')) {
					end++
				}
				if end >= len(rest) {
					t.Fatalf("%s: unterminated want pattern: %s", pos, c.Text)
				}
				quoted := rest[:end+1]
				rest = strings.TrimSpace(rest[end+1:])
				unquoted, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", pos, quoted, err)
				}
				re, err := regexp.Compile(unquoted)
				if err != nil {
					t.Fatalf("%s: bad want regexp %s: %v", pos, quoted, err)
				}
				perFile := want[pos.Filename]
				if perFile == nil {
					perFile = map[int][]*expectation{}
					want[pos.Filename] = perFile
				}
				perFile[pos.Line] = append(perFile[pos.Line], &expectation{re: re})
			}
		}
	}
}
