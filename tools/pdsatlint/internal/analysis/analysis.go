// Package analysis is a dependency-free subset of the golang.org/x/tools
// go/analysis API.  The container this project builds in has no module
// proxy access, so the multichecker cannot depend on x/tools; pdsatlint
// therefore ships the small part of the surface it needs — Analyzer, Pass
// and Diagnostic — with the same field names and semantics, so the
// analyzers read like ordinary go/analysis analyzers and could be ported
// to the real framework by changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("determinism", ...).
	Name string
	// Doc is the analyzer's help text; the first line is its summary.
	Doc string
	// Run applies the analyzer to one package.  Findings are delivered
	// through pass.Report; the result value is unused by this driver.
	Run func(*Pass) (any, error)
}

// Pass is the interface between the driver and one analyzer run on one
// package: the package's syntax, type information and a diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
