package checkers

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/analysis"
)

// CtxDiscipline enforces the repository's context conventions:
//
//   - context.Context is the first parameter of any function that takes
//     one (receivers excluded);
//   - contexts are never stored in struct fields, except in the
//     sanctioned job types (struct names ending in "Job" — a job owns
//     its lifecycle);
//   - context.Background()/context.TODO() appear only in package main,
//     in examples, and in tests (test files are not analyzed at all);
//     library code must thread the caller's context.
var CtxDiscipline = &analysis.Analyzer{
	Name: "ctxdiscipline",
	Doc:  "context.Context first parameter, never stored in structs, no Background/TODO outside main/examples/tests",
	Run:  runCtxDiscipline,
}

func runCtxDiscipline(pass *analysis.Pass) (any, error) {
	allowBackground := pass.Pkg.Name() == "main" ||
		strings.HasPrefix(pass.Pkg.Path(), "examples/") ||
		strings.Contains(pass.Pkg.Path(), "/examples/")

	isCtx := func(e ast.Expr) bool {
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			return false
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Type.Params == nil {
					return true
				}
				index := 0
				for _, field := range n.Type.Params.List {
					width := len(field.Names)
					if width == 0 {
						width = 1
					}
					if isCtx(field.Type) && index != 0 {
						pass.Reportf(field.Pos(), "context.Context must be the first parameter of %s (found at parameter %d)",
							funcName(n), index)
					}
					index += width
				}
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				if strings.HasSuffix(n.Name.Name, "Job") {
					return true // sanctioned job types own their lifecycle
				}
				for _, field := range st.Fields.List {
					if isCtx(field.Type) {
						pass.Reportf(field.Pos(), "struct %s stores a context.Context; thread it through calls instead (only the sanctioned job types may hold one)",
							n.Name.Name)
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if (fn.Name() == "Background" || fn.Name() == "TODO") && !allowBackground {
					pass.Reportf(n.Pos(), "context.%s() in library package %s; accept and thread the caller's context",
						fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil, nil
}
