package checkers_test

import (
	"testing"

	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/analysistest"
	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/checkers"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", checkers.Determinism, "internal/eval")
}

func TestDeterminismOutsideDeterministicPackages(t *testing.T) {
	analysistest.Run(t, "testdata", checkers.Determinism, "plain")
}

func TestGuardedFields(t *testing.T) {
	analysistest.Run(t, "testdata", checkers.GuardedFields, "guarded")
}

func TestCtxDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", checkers.CtxDiscipline, "ctxfix")
}

func TestCtxDisciplineMainPackage(t *testing.T) {
	analysistest.Run(t, "testdata", checkers.CtxDiscipline, "mainpkg")
}

func TestLedger(t *testing.T) {
	analysistest.Run(t, "testdata", checkers.Ledger, "ledgerfix")
}

func TestShadow(t *testing.T) {
	analysistest.Run(t, "testdata", checkers.Shadow, "shadowfix")
}
