package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/analysis"
)

// Ledger protects the sample-accounting invariant
//
//	samplesPlanned == subproblemsSolved + subproblemsAborted + samplesSkipped
//
// by demanding that every function mutating one of the paired counters
// (writing the field, or taking its address) is reachable, through the
// package-local call graph, from a method of an accounting root type
// (Scope, or the legacy Runner whose ledger Scope forwards into).  A new
// helper that bumps a counter directly — bypassing the notePlanned/
// noteSkipped/absorb bookkeeping — is flagged at its declaration.
var Ledger = &analysis.Analyzer{
	Name: "ledger",
	Doc:  "accounting counters may only be mutated on paths reachable from a Scope method",
	Run:  runLedger,
}

// ledgerCounters are the paired accounting fields, in both the unexported
// spelling the implementation uses and the exported spelling of the
// public counters.
var ledgerCounters = map[string]bool{
	"samplesPlanned":     true,
	"subproblemsSolved":  true,
	"subproblemsAborted": true,
	"samplesSkipped":     true,
	"SamplesPlanned":     true,
	"SubproblemsSolved":  true,
	"SubproblemsAborted": true,
	"SamplesSkipped":     true,
}

// ledgerRoots are the receiver type names whose methods constitute the
// sanctioned accounting surface.
var ledgerRoots = map[string]bool{"Scope": true, "Runner": true}

func runLedger(pass *analysis.Pass) (any, error) {
	type funcInfo struct {
		decl      *ast.FuncDecl
		obj       *types.Func
		mutates   []string // counter fields this function writes
		calls     map[*types.Func]bool
		isRoot    bool
		mutatePos token.Pos
	}
	var funcs []*funcInfo
	byObj := map[*types.Func]*funcInfo{}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{decl: fd, obj: obj, calls: map[*types.Func]bool{}}
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				if name := namedStructName(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)); ledgerRoots[name] {
					fi.isRoot = true
				}
			}
			counterField := func(e ast.Expr) (string, bool) {
				sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
				if !ok || !ledgerCounters[sel.Sel.Name] {
					return "", false
				}
				selection, ok := pass.TypesInfo.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return "", false
				}
				return sel.Sel.Name, true
			}
			note := func(field string, pos token.Pos) {
				fi.mutates = append(fi.mutates, field)
				if fi.mutatePos == token.NoPos {
					fi.mutatePos = pos
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IncDecStmt:
					if f, ok := counterField(n.X); ok {
						note(f, n.Pos())
					}
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if f, ok := counterField(lhs); ok {
							note(f, n.Pos())
						}
					}
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						if f, ok := counterField(n.X); ok {
							note(f, n.Pos())
						}
					}
				case *ast.CallExpr:
					if callee := calleeFunc(pass.TypesInfo, n); callee != nil && callee.Pkg() == pass.Pkg {
						fi.calls[callee] = true
					}
				}
				return true
			})
			funcs = append(funcs, fi)
			byObj[obj] = fi
		}
	}

	// BFS from the accounting roots through the package-local call graph.
	reachable := map[*types.Func]bool{}
	var queue []*funcInfo
	for _, fi := range funcs {
		if fi.isRoot {
			reachable[fi.obj] = true
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for callee := range fi.calls {
			if reachable[callee] {
				continue
			}
			reachable[callee] = true
			if cfi := byObj[callee]; cfi != nil {
				queue = append(queue, cfi)
			}
		}
	}

	for _, fi := range funcs {
		if len(fi.mutates) == 0 || reachable[fi.obj] {
			continue
		}
		fields := uniqueSorted(fi.mutates)
		pass.Reportf(fi.mutatePos, "%s mutates ledger counter(s) %s but is not reachable from a Scope method; route the accounting through the Scope ledger",
			funcName(fi.decl), strings.Join(fields, ", "))
	}
	return nil, nil
}

func uniqueSorted(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
