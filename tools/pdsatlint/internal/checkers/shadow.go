package checkers

import (
	"go/token"
	"go/types"

	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/analysis"
)

// Shadow is a conservative reimplementation of the x/tools shadow vet
// check (shadow is not in the stock `go vet` tool set, and x/tools is
// unreachable in this offline build): it reports a declaration of a
// variable that shadows an identically named, identically typed variable
// from an enclosing scope of the same function, when the shadowed
// variable is still used after the shadowing scope ends — the pattern
// where an assignment to the wrong one is a silent bug.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "report shadowed variable declarations whose outer variable is used afterwards",
	Run:  runShadow,
}

func runShadow(pass *analysis.Pass) (any, error) {
	// Last use position of every variable, to test "the shadowed
	// variable is used after the shadowing scope ends".
	lastUse := map[*types.Var]token.Pos{}
	for id, obj := range pass.TypesInfo.Uses {
		if v, ok := obj.(*types.Var); ok && id.End() > lastUse[v] {
			lastUse[v] = id.End()
		}
	}
	pkgScope := pass.Pkg.Scope()
	for id, obj := range pass.TypesInfo.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Name() == "_" {
			continue
		}
		inner := v.Parent()
		if inner == nil || inner == pkgScope {
			continue
		}
		for s := inner.Parent(); s != nil && s != pkgScope; s = s.Parent() {
			prev, ok := s.Lookup(v.Name()).(*types.Var)
			if !ok || prev == v || prev.IsField() {
				continue
			}
			if prev.Pos() >= v.Pos() || !types.Identical(prev.Type(), v.Type()) {
				break
			}
			if lastUse[prev] > inner.End() {
				pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d",
					v.Name(), pass.Fset.Position(prev.Pos()).Line)
			}
			break // report against the innermost shadowed variable only
		}
	}
	return nil, nil
}
