// Package eval is a determinism-analyzer fixture standing in for one of
// the repository's deterministic packages (matched by import-path
// suffix).
package eval

import (
	"math/rand"
	"sort"
	"time"
)

// SubSeed stands in for the sanctioned seed-derivation helper.
func SubSeed(root int64, i int) int64 { return root + int64(i) }

func clocks() time.Duration {
	now := time.Now()      // want `time\.Now in deterministic package`
	return time.Since(now) // want `time\.Since in deterministic package`
}

//pdsat:nondeterministic wall-clock reporting only, never feeds results
func justifiedByDoc() time.Time {
	return time.Now()
}

func justifiedInline() time.Time {
	//pdsat:nondeterministic measuring elapsed wall time for the log line
	return time.Now()
}

func missingJustification() time.Time {
	//pdsat:nondeterministic // want `needs a justification`
	return time.Now() // want `time\.Now in deterministic package`
}

func ambient() int {
	return rand.Int() // want `top-level math/rand function rand\.Int`
}

func unseeded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand\.New outside the sanctioned seed-derivation`
}

func seeded(rootSeed int64) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(rootSeed, 1)))
}

func mapOrder(m map[int]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order feeds unsorted sink`
		total += v
	}
	return total
}

func sortedKeys(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func clearValues(m map[int]float64) {
	for k := range m {
		m[k] = 0
	}
}

func race(a, b chan int) int {
	select { // want `select with 2 result-carrying cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func oneResult(a chan int, done chan struct{}) int {
	select {
	case v := <-a:
		return v
	case <-done:
		return 0
	}
}
