// Package guarded is the guarded-fields fixture: sibling guards,
// foreign (dotted) guards, the `// requires <mu>` escape and the
// constructor exemption.
package guarded

import "sync"

type counterBox struct {
	mu sync.Mutex
	// guarded by mu
	n int
	// guarded by missing // want `guard "missing" is not a field of struct counterBox`
	m int
}

func (b *counterBox) inc() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *counterBox) peek() int {
	return b.n // want `counterBox\.n is guarded by mu`
}

// addLocked bumps the counter on behalf of a caller holding the lock.
// requires mu
func (b *counterBox) addLocked(delta int) {
	b.n += delta
}

// requires // want `requires annotation names no mutex`
func (b *counterBox) badRequires(delta int) {
	b.n += delta // want `counterBox\.n is guarded by mu`
}

func newCounterBox() *counterBox {
	b := &counterBox{}
	b.n = 1 // constructor exemption: the value has not escaped yet
	return b
}

type owner struct {
	mu sync.Mutex
	// guarded by mu
	books []*book
}

type book struct {
	// guarded by owner.mu
	pages int
}

func (o *owner) flip(b *book) {
	o.mu.Lock()
	defer o.mu.Unlock()
	b.pages++
	o.books = append(o.books, b)
}

func torn(b *book) {
	b.pages++ // want `book\.pages is guarded by owner\.mu`
}
