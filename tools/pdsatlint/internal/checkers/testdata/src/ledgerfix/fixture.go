// Package ledgerfix is the ledger fixture: counter mutations must be
// reachable from a Scope method.
package ledgerfix

// Scope mirrors the accounting root type.
type Scope struct {
	samplesPlanned     int
	samplesSkipped     int
	subproblemsSolved  int
	subproblemsAborted int
}

func (s *Scope) notePlanned(n int) {
	s.samplesPlanned += n
}

func (s *Scope) absorb(results []int) {
	absorbResults(results, &s.subproblemsSolved, &s.subproblemsAborted)
}

// absorbResults has no counter references of its own (it mutates through
// pointers its callers take), and it is reachable from Scope.absorb.
func absorbResults(results []int, solved, aborted *int) {
	for range results {
		*solved++
	}
	_ = aborted
}

// skipViaHelper routes the skip accounting through a helper; the helper
// is reachable from this Scope method, so both are fine.
func (s *Scope) skipViaHelper(n int) {
	bumpSkipped(s, n)
}

func bumpSkipped(s *Scope, n int) {
	s.samplesSkipped += n
}

// sneaky bypasses the Scope ledger: nothing on the Scope accounting
// surface reaches it.
func sneaky(s *Scope) {
	s.samplesPlanned++ // want `mutates ledger counter\(s\) samplesPlanned`
}
