// Package ctxfix is the ctx-discipline fixture for library packages.
package ctxfix

import "context"

func badOrder(name string, ctx context.Context) string { // want `context\.Context must be the first parameter`
	_ = ctx
	return name
}

func goodOrder(ctx context.Context, name string) string {
	_ = ctx
	return name
}

type holder struct {
	ctx context.Context // want `struct holder stores a context\.Context`
}

// SearchJob is a sanctioned job type: job types own their lifecycle.
type SearchJob struct {
	ctx context.Context
}

func ambient() context.Context {
	return context.Background() // want `context\.Background\(\) in library package`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) in library package`
}
