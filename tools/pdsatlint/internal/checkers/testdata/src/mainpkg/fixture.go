// Command mainpkg shows that package main may own root contexts.
package main

import "context"

func main() {
	_ = context.Background()
}
