// Package shadowfix is the shadow fixture.
package shadowfix

import "errors"

func shadowed(fail bool) error {
	err := errors.New("outer")
	if fail {
		err := errors.New("inner") // want `declaration of "err" shadows declaration at line 7`
		_ = err
	}
	return err
}

func disjoint(fail bool) error {
	err := errors.New("outer")
	if err != nil && fail {
		return err
	}
	if fail {
		err := errors.New("inner") // fine: the outer err is dead here
		_ = err
	}
	return nil
}

func differentType(fail bool) int {
	n := 1
	if fail {
		n := "shadow" // fine for this conservative check: distinct types
		_ = n
	}
	return n
}
