// Package plain is not a deterministic package: clocks and randomness
// are fine here, but a justification-less escape directive is still
// rejected wherever it appears.
package plain

import "time"

func clockIsFine() time.Time {
	return time.Now()
}

func staleDirective() int {
	//pdsat:nondeterministic // want `needs a justification`
	return 1
}
