// Package checkers holds pdsatlint's analyzers: project-specific checks
// that turn the repository's determinism, locking and accounting
// invariants into compile-time gates, plus a shadow check standing in
// for the x/tools vet analyzer that an offline build cannot fetch.
package checkers

import "github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/analysis"

// All is the multichecker's analyzer suite, in reporting order.
var All = []*analysis.Analyzer{
	Determinism,
	GuardedFields,
	CtxDiscipline,
	Ledger,
	Shadow,
}
