package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/analysis"
)

// Determinism enforces the repository's reproducibility contract inside
// the deterministic packages (internal/solver, internal/eval,
// internal/optimize, internal/decomp, internal/montecarlo): fixed-seed
// runs must be bit-identical across machines and schedules, so those
// packages may not read wall clocks, draw from ambient randomness,
// observe map iteration order, or race goroutines through a select.
//
// Flagged:
//   - time.Now / time.Since calls;
//   - top-level math/rand functions (ambient, globally seeded);
//   - rand.New / rand.NewSource whose seed expression does not mention a
//     seed (the sanctioned pattern is explicit derivation, e.g.
//     rand.New(rand.NewSource(opts.Seed)) or SubSeed(root, i));
//   - ranging over a map, unless the body only collects keys/values into
//     slices that are explicitly sorted later in the same function, or
//     only mutates the ranged map itself per key (order-invariant);
//   - select statements with two or more result-carrying (value-binding
//     receive) cases — whichever case wins injects scheduling order into
//     the data flow.
//
// Genuine, justified nondeterminism is escaped with
// `//pdsat:nondeterministic <reason>` on the line, the line above, or
// the enclosing function's doc comment.  A bare directive without a
// justification is itself a diagnostic, in every package.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, ambient randomness, map-order and select races in deterministic packages",
	Run:  runDeterminism,
}

// deterministicPkgs are the package-path suffixes the determinism
// analyzer applies to.
var deterministicPkgs = []string{
	"internal/solver",
	"internal/eval",
	"internal/optimize",
	"internal/decomp",
	"internal/montecarlo",
}

func isDeterministicPkg(path string) bool {
	for _, s := range deterministicPkgs {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	dirs := collectNondet(pass)
	dirs.reportBare(pass)
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}

	// rand.NewSource calls nested inside a rand.New argument are judged
	// as part of the rand.New call, not separately.
	covered := map[*ast.CallExpr]bool{}

	withEnclosingFunc(pass, func(n ast.Node, enclosing *ast.FuncDecl) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn on an owned rng) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					if !dirs.suppressed(pass.Fset, n.Pos(), enclosing) {
						pass.Reportf(n.Pos(), "time.%s in deterministic package %s (escape with %q if the clock read is justified)",
							fn.Name(), pass.Pkg.Path(), nondetPrefix+" <reason>")
					}
				}
			case "math/rand", "math/rand/v2":
				switch fn.Name() {
				case "New", "NewSource":
					if n2, ok := n.Fun.(*ast.SelectorExpr); ok && n2.Sel.Name == "New" {
						ast.Inspect(n, func(m ast.Node) bool {
							if c, ok := m.(*ast.CallExpr); ok && c != n {
								if inner := calleeFunc(pass.TypesInfo, c); inner != nil && inner.Name() == "NewSource" {
									covered[c] = true
								}
							}
							return true
						})
					}
					if covered[n] {
						return true
					}
					if !mentionsSeed(n) && !dirs.suppressed(pass.Fset, n.Pos(), enclosing) {
						pass.Reportf(n.Pos(), "rand.%s outside the sanctioned seed-derivation pattern in deterministic package %s (seed the source from an explicit seed, e.g. SubSeed)",
							fn.Name(), pass.Pkg.Path())
					}
				default:
					if !dirs.suppressed(pass.Fset, n.Pos(), enclosing) {
						pass.Reportf(n.Pos(), "top-level math/rand function rand.%s in deterministic package %s (use an explicitly seeded *rand.Rand)",
							fn.Name(), pass.Pkg.Path())
					}
				}
			}
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if mapRangeOrderInvariant(pass, n, enclosing) {
				return true
			}
			if !dirs.suppressed(pass.Fset, n.Pos(), enclosing) {
				pass.Reportf(n.Pos(), "map iteration order feeds unsorted sink in deterministic package %s (sort the keys first, or make every ranged write order-invariant)",
					pass.Pkg.Path())
			}
		case *ast.SelectStmt:
			carrying := 0
			for _, clause := range n.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok || comm.Comm == nil {
					continue
				}
				if assign, ok := comm.Comm.(*ast.AssignStmt); ok && len(assign.Rhs) == 1 {
					if u, ok := assign.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						carrying++
					}
				}
			}
			if carrying >= 2 && !dirs.suppressed(pass.Fset, n.Pos(), enclosing) {
				pass.Reportf(n.Pos(), "select with %d result-carrying cases in deterministic package %s (whichever case wins injects scheduling order into the data flow)",
					carrying, pass.Pkg.Path())
			}
		}
		return true
	})
	return nil, nil
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// mentionsSeed reports whether any identifier inside the expression
// contains "seed" (case-insensitive) — the sanctioned way to construct a
// *rand.Rand is from an explicitly derived seed.
func mentionsSeed(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "seed") {
			found = true
		}
		return !found
	})
	return found
}

// mapRangeOrderInvariant recognizes the two order-invariant map-range
// shapes: (a) every body statement appends the key/value to slices that
// are later passed to a sort call in the same function (the explicit
// sorted-sink pattern), or (b) every body statement writes only to the
// ranged map itself per key (clearing / per-key updates commute).
func mapRangeOrderInvariant(pass *analysis.Pass, rs *ast.RangeStmt, enclosing *ast.FuncDecl) bool {
	rangedStr := types.ExprString(rs.X)
	var sinks []string
	allAppends, allSelfWrites := true, true
	for _, stmt := range rs.Body.List {
		switch stmt := stmt.(type) {
		case *ast.AssignStmt:
			if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
				return false
			}
			// s = append(s, ...)
			if lhs, ok := stmt.Lhs[0].(*ast.Ident); ok {
				if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok {
					if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 {
						if arg0, ok := call.Args[0].(*ast.Ident); ok && arg0.Name == lhs.Name {
							sinks = append(sinks, lhs.Name)
							allSelfWrites = false
							continue
						}
					}
				}
			}
			// m[k] = v on the ranged map
			if idx, ok := stmt.Lhs[0].(*ast.IndexExpr); ok && types.ExprString(idx.X) == rangedStr {
				allAppends = false
				continue
			}
			return false
		case *ast.ExprStmt:
			// delete(m, k) on the ranged map
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "delete" && len(call.Args) == 2 {
					if types.ExprString(call.Args[0]) == rangedStr {
						allAppends = false
						continue
					}
				}
			}
			return false
		default:
			return false
		}
	}
	if allSelfWrites && len(rs.Body.List) > 0 && !allAppends {
		return true
	}
	if len(sinks) == 0 || enclosing == nil {
		return false
	}
	// Every sink must reach a sort call after the range statement.
	sorted := map[string]bool{}
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isSort := (pkg.Name == "sort") || (pkg.Name == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if !isSort || len(call.Args) == 0 {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			sorted[arg.Name] = true
		}
		return true
	})
	for _, s := range sinks {
		if !sorted[s] {
			return false
		}
	}
	return true
}
