package checkers

import (
	"go/ast"
	"go/token"
	"strings"

	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/analysis"
)

// nondetPrefix is the determinism escape directive.  It must carry a
// justification: `//pdsat:nondeterministic wall-clock reporting only`.
const nondetPrefix = "//pdsat:nondeterministic"

// nondetDirectives maps file name -> line -> justification for every
// //pdsat:nondeterministic directive in the package.  Directives with an
// empty justification are recorded too (the analyzer rejects them
// separately), so a bare directive still suppresses nothing.
type nondetDirectives map[string]map[int]string

func collectNondet(pass *analysis.Pass) nondetDirectives {
	dirs := nondetDirectives{}
	for _, file := range pass.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, nondetPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, nondetPrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //pdsat:nondeterministic-ish — not the directive
				}
				pos := pass.Fset.Position(c.Pos())
				perFile := dirs[pos.Filename]
				if perFile == nil {
					perFile = map[int]string{}
					dirs[pos.Filename] = perFile
				}
				reason := strings.TrimSpace(rest)
				if strings.HasPrefix(reason, "//") {
					// A comment following the directive is not a
					// justification.
					reason = ""
				}
				perFile[pos.Line] = reason
			}
		}
	}
	return dirs
}

// reportBare emits a diagnostic for every directive without a
// justification.  It runs in every package, so a justification-less
// escape can't hide in a package the determinism checks don't cover.
func (d nondetDirectives) reportBare(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, nondetPrefix) {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if perFile := d[pos.Filename]; perFile != nil && perFile[pos.Line] == "" {
					if _, ok := perFile[pos.Line]; ok {
						pass.Reportf(c.Pos(), "pdsat:nondeterministic directive needs a justification (\"%s <reason>\")", nondetPrefix)
					}
				}
			}
		}
	}
}

// suppressed reports whether the node at pos is covered by a justified
// directive: on the same line, on the line directly above, or in the doc
// comment of the enclosing function declaration.
func (d nondetDirectives) suppressed(fset *token.FileSet, pos token.Pos, enclosing *ast.FuncDecl) bool {
	p := fset.Position(pos)
	if perFile := d[p.Filename]; perFile != nil {
		if perFile[p.Line] != "" || perFile[p.Line-1] != "" {
			return true
		}
	}
	if enclosing != nil && enclosing.Doc != nil {
		for _, c := range enclosing.Doc.List {
			dp := fset.Position(c.Pos())
			if perFile := d[dp.Filename]; perFile != nil && perFile[dp.Line] != "" {
				return true
			}
		}
	}
	return false
}

// withEnclosingFunc walks every file of the pass, invoking fn for each
// node with the function declaration lexically enclosing it (nil at file
// scope).  Returning false from fn prunes the subtree.
func withEnclosingFunc(pass *analysis.Pass, fn func(n ast.Node, enclosing *ast.FuncDecl) bool) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Body == nil {
					continue
				}
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					if n == nil {
						return true
					}
					return fn(n, decl)
				})
			default:
				ast.Inspect(decl, func(n ast.Node) bool {
					if n == nil {
						return true
					}
					return fn(n, nil)
				})
			}
		}
	}
}
