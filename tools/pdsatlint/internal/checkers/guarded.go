package checkers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/analysis"
)

// GuardedFields enforces `// guarded by <mu>` field annotations: a field
// so annotated may only be accessed lexically inside a function that
// locks that mutex, or inside a function annotated `// requires <mu>`
// (callers hold the lock).  The check is flow-insensitive by design — it
// catches the common regression (a new call site touching shared state
// without the lock) without attempting alias analysis.
//
// Two guard spellings are supported:
//
//   - `// guarded by mu` — mu is a sibling field of the same struct; an
//     access x.f is satisfied by an x.mu.Lock()/RLock() call (textually
//     the same base expression x) in the enclosing function.
//   - `// guarded by Leader.mu` — the guard lives on another struct of
//     the same package (the cluster leader owns its workers' book-keeping);
//     an access is satisfied by a Lock/RLock call on the mu field of any
//     expression of type Leader in the enclosing function.
//
// Constructor exemption: accesses through a local variable that the
// function itself created with a composite literal of the struct type
// are skipped — the value has not escaped yet, so no lock can or need be
// held.
var GuardedFields = &analysis.Analyzer{
	Name: "guardedfields",
	Doc:  "check that fields annotated `// guarded by <mu>` are only accessed with the mutex held",
	Run:  runGuardedFields,
}

var (
	guardedByRe = regexp.MustCompile(`(?i)\bguarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)`)
	// requiresRe matches the whole-line `// requires <mu>` function
	// annotation (optionally with a trailing period, an explanation
	// after a colon, or a trailing comment), deliberately strict so
	// prose like "requires the lock" does not register.
	requiresRe = regexp.MustCompile(`^requires ([A-Za-z_][A-Za-z0-9_.]*)\.?\s*(:.*|//.*)?$`)
	// requiresBareRe catches a requires annotation that names no mutex.
	requiresBareRe = regexp.MustCompile(`^requires\s*(//.*)?$`)
)

type guardSpec struct {
	// name is the guard as written ("mu" or "Leader.mu").
	name string
	// owner and field split a dotted guard; owner is "" for sibling
	// guards.
	owner, field string
}

func runGuardedFields(pass *analysis.Pass) (any, error) {
	// Pass 1: collect annotated fields per named struct type.
	// guards[structName][fieldName] = spec.
	guards := map[string]map[string]guardSpec{}
	structFields := map[string]map[string]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fields := map[string]bool{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fields[name.Name] = true
				}
			}
			structFields[ts.Name.Name] = fields
			for _, field := range st.Fields.List {
				guard, pos := fieldGuard(field)
				if guard == "" {
					continue
				}
				spec := guardSpec{name: guard}
				if i := strings.LastIndex(guard, "."); i >= 0 {
					spec.owner, spec.field = guard[:i], guard[i+1:]
				} else if !fields[guard] {
					pass.Reportf(pos.Pos(), "guard %q is not a field of struct %s", guard, ts.Name.Name)
					continue
				}
				m := guards[ts.Name.Name]
				if m == nil {
					m = map[string]guardSpec{}
					guards[ts.Name.Name] = m
				}
				for _, name := range field.Names {
					m[name.Name] = spec
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return nil, nil
	}

	// Pass 2: per function, gather lock facts and check accesses.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncGuards(pass, fd, guards)
		}
	}
	return nil, nil
}

// fieldGuard extracts a `guarded by <mu>` annotation from a struct
// field's doc or line comment.
func fieldGuard(field *ast.Field) (string, ast.Node) {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if m := guardedByRe.FindStringSubmatch(c.Text); m != nil {
				return m[1], c
			}
		}
	}
	return "", nil
}

type funcGuardFacts struct {
	// lockedExprs holds the textual bases of mu.Lock()/RLock() calls:
	// "s.mu" for s.mu.Lock().
	lockedExprs map[string]bool
	// lockedOwners holds "Type.field" for each lock call whose base is a
	// field selector on a value of a named struct type.
	lockedOwners map[string]bool
	// requires holds the names from `// requires <mu>` annotations.
	requires map[string]bool
	// constructed holds struct type names the function builds with a
	// composite literal.
	constructed map[string]bool
}

func gatherFuncGuardFacts(pass *analysis.Pass, fd *ast.FuncDecl) *funcGuardFacts {
	facts := &funcGuardFacts{
		lockedExprs:  map[string]bool{},
		lockedOwners: map[string]bool{},
		requires:     map[string]bool{},
		constructed:  map[string]bool{},
	}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if m := requiresRe.FindStringSubmatch(text); m != nil {
				facts.requires[m[1]] = true
			} else if requiresBareRe.MatchString(text) {
				pass.Reportf(c.Pos(), "requires annotation names no mutex (want `// requires <mu>`)")
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") || len(n.Args) != 0 {
				return true
			}
			base := ast.Unparen(sel.X)
			facts.lockedExprs[types.ExprString(base)] = true
			if fieldSel, ok := base.(*ast.SelectorExpr); ok {
				if owner := namedStructName(pass.TypesInfo.TypeOf(fieldSel.X)); owner != "" {
					facts.lockedOwners[owner+"."+fieldSel.Sel.Name] = true
				}
			}
		case *ast.CompositeLit:
			if name := namedStructName(pass.TypesInfo.TypeOf(n)); name != "" {
				facts.constructed[name] = true
			}
		}
		return true
	})
	return facts
}

func checkFuncGuards(pass *analysis.Pass, fd *ast.FuncDecl, guards map[string]map[string]guardSpec) {
	facts := gatherFuncGuardFacts(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		owner := namedStructName(selection.Recv())
		if owner == "" {
			return true
		}
		spec, ok := guards[owner][sel.Sel.Name]
		if !ok {
			return true
		}
		base := ast.Unparen(sel.X)
		baseStr := types.ExprString(base)
		if spec.owner == "" {
			// Sibling guard: x.f needs x.mu locked, `// requires mu`, or
			// the constructor exemption.
			if facts.lockedExprs[baseStr+"."+spec.name] {
				return true
			}
			if facts.requires[spec.name] || facts.requires[owner+"."+spec.name] {
				return true
			}
			if id, ok := base.(*ast.Ident); ok && facts.constructed[owner] && isLocalVar(pass.TypesInfo, fd, id) {
				return true
			}
		} else {
			// Foreign guard ("Leader.mu"): any lock of that type's field
			// satisfies it.
			if facts.lockedOwners[spec.name] || facts.requires[spec.name] {
				return true
			}
			if id, ok := base.(*ast.Ident); ok && facts.constructed[owner] && isLocalVar(pass.TypesInfo, fd, id) {
				return true
			}
		}
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, but %s neither locks it nor is annotated `// requires %s`",
			owner, sel.Sel.Name, spec.name, funcName(fd), spec.name)
		return true
	})
}

// namedStructName returns the name of the named struct type underlying t
// (through one level of pointer), or "".
func namedStructName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		if p, ok := t.(*types.Pointer); ok {
			named, ok = p.Elem().(*types.Named)
			if !ok {
				return ""
			}
		} else {
			return ""
		}
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return ""
	}
	return named.Obj().Name()
}

// isLocalVar reports whether id resolves to a variable declared inside
// fd's body (not a parameter or receiver).
func isLocalVar(info *types.Info, fd *ast.FuncDecl, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() >= fd.Body.Pos() && v.Pos() <= fd.Body.End()
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return "method " + fd.Name.Name
	}
	return "function " + fd.Name.Name
}
