// Command pdsatlint is the repository's static-analysis gate: a
// go/analysis-style multichecker enforcing the invariants the paper
// reproduction depends on (see the analyzers' docs and CONTRIBUTING.md).
//
// Usage, from the repository root (the go.work file makes the nested
// module resolvable):
//
//	go run ./tools/pdsatlint ./...
//
// The tool lists the matching packages with `go list -export -deps`,
// type-checks them from source (non-test files; _test.go files are
// exempt from the invariants), runs every analyzer and prints findings
// as file:line:col: analyzer: message.  Exit status 1 if anything was
// reported.  It needs no network and no dependencies outside the
// standard library: the go/analysis subset it uses is vendored as
// internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/analysis"
	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/checkers"
	"github.com/paper-repro/pdsat-go/tools/pdsatlint/internal/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pdsatlint [packages]\n\nAnalyzers:\n")
		for _, a := range checkers.All {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, targets, err := load.List("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdsatlint: %v\n", err)
		return 2
	}

	type finding struct {
		analyzer string
		diag     analysis.Diagnostic
	}
	var findings []finding
	for _, target := range targets {
		checked, err := loader.Check(target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdsatlint: %v\n", err)
			return 2
		}
		for _, a := range checkers.All {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      loader.Fset,
				Files:     checked.Files,
				Pkg:       checked.Types,
				TypesInfo: checked.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, finding{analyzer: name, diag: d})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "pdsatlint: %s: %s: %v\n", target.ImportPath, a.Name, err)
				return 2
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		pi := loader.Fset.Position(findings[i].diag.Pos)
		pj := loader.Fset.Position(findings[j].diag.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s: %s: %s\n", loader.Fset.Position(f.diag.Pos), f.analyzer, f.diag.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pdsatlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
