module github.com/paper-repro/pdsat-go/tools/pdsatlint

go 1.24
