// Command benchjson converts `go test -bench` text output into a JSON
// artifact for the CI performance trajectory (BENCH_<pr>.json).  The JSON
// keeps every raw benchmark line verbatim — `jq -r '.benchmarks[].raw'`
// reconstructs a file benchstat consumes directly — next to the parsed
// per-metric values for dashboards and diffing.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run '^$' . | benchjson > BENCH_pr3.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchmark is one parsed benchmark result line.
type benchmark struct {
	// Name is the full benchmark name including the GOMAXPROCS suffix
	// (e.g. "BenchmarkTable1_A51DecompositionSets-8").
	Name string `json:"name"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value: the standard ns/op, B/op, allocs/op plus
	// every custom b.ReportMetric unit (F_S1, mean_deviation_%, ...).
	Metrics map[string]float64 `json:"metrics"`
	// Raw is the untouched benchmark line, benchstat-consumable.
	Raw string `json:"raw"`
}

// output is the artifact's top-level document.
type output struct {
	Format string `json:"format"`
	// Env echoes the "goos:", "goarch:", "pkg:" and "cpu:" header lines.
	Env        map[string]string `json:"env"`
	Benchmarks []benchmark       `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(in *os.File, out *os.File) error {
	doc := output{Format: "go-bench-json/v1", Env: map[string]string{}, Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseBenchLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
			continue
		}
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Env[key] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// parseBenchLine parses "BenchmarkName-8   1   123 ns/op   3.2 F_S1 ..."
// into a benchmark.  Lines that do not look like results are skipped.
func parseBenchLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}, Raw: line}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
