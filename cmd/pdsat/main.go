// Command pdsat reproduces the modes of the MPI program PDSAT used in the
// paper, on top of the library's leader/worker runner:
//
//	-mode estimate   compute the predictive function F for a decomposition set
//	-mode search     minimize F with simulated annealing or tabu search
//	-mode solve      process the whole decomposition family (key recovery)
//
// The SAT instance is either generated on the fly from one of the three
// keystream generators (-generator, -known, -keystream, -seed) or read from
// a DIMACS file (-cnf) together with an explicit start set (-start).
//
// By default the subproblems run on in-process goroutine workers.  The same
// binary can also form a network cluster, mirroring the paper's MPI
// deployment: a leader listens with -listen and dispatches every subproblem
// to remote workers, and a worker joins a leader with -join (all other mode
// flags are then ignored — the leader ships the formula over the wire):
//
//	pdsat -listen :9100 -min-workers 2 -mode solve ...   # terminal 1 (leader)
//	pdsat -join leaderhost:9100 -workers 8               # terminal 2..n (workers)
//
// SIGINT/SIGTERM interrupt the workers cleanly (non-blocking interrupt
// messages, like PDSAT's) and still print a partial report.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/solver"
	"github.com/paper-repro/pdsat-go/pdsat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "pdsat: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode       = flag.String("mode", "estimate", "estimate, search or solve")
		generator  = flag.String("generator", "a5/1", "keystream generator: a5/1, bivium or grain (ignored with -cnf)")
		keystream  = flag.Int("keystream", 0, "keystream length (0 = paper default)")
		known      = flag.Int("known", 0, "number of trailing state bits fixed to their secret values")
		seed       = flag.Int64("seed", 1, "random seed (instance secret, samples and search)")
		cnfPath    = flag.String("cnf", "", "solve a DIMACS file instead of a generated instance")
		startList  = flag.String("start", "", "comma-separated start-set variables (required with -cnf)")
		setList    = flag.String("set", "", "explicit decomposition set (comma-separated variables); default: the start set")
		method     = flag.String("method", "tabu", "search method: sa or tabu")
		fleetSpec  = flag.String("fleet", "", `race a fleet of concurrent searches over one cluster, e.g. "tabu:4,sa:4" (implies -mode search; -evaluations is the fleet-total budget, split fairly)`)
		targetF    = flag.Float64("target-f", 0, "with -fleet, stop the whole race once a member certifies a best F at or below this (0 = disabled)")
		jitter     = flag.Int("jitter", 0, "with -fleet, flip this many deterministically seeded start-set bits per member (member 0 keeps the canonical start)")
		keepRacing = flag.Bool("keep-racing", false, "with -fleet, keep the remaining members running after one exhausts its space or hits -target-f")
		samples    = flag.Int("samples", 200, "Monte Carlo sample size N")
		evals      = flag.Int("evaluations", 50, "maximum predictive-function evaluations during search")
		workers    = flag.Int("workers", 0, "computing processes (0 = all CPUs)")
		cores      = flag.Int("cores", 480, "core count for extrapolated predictions")
		metric     = flag.String("cost", "propagations", "cost metric: conflicts, propagations, decisions or seconds")
		budget     = flag.Uint64("subproblem-conflicts", 0, "conflict budget per sampled subproblem (0 = unlimited)")
		evalPolicy = flag.String("eval-policy", "off", "budget-aware evaluation policy: off (full-sample, bit-identical to the classic pipeline) or default (pruning + staged sampling + F-cache)")
		prune      = flag.Bool("prune", false, "abort evaluations whose partial lower bound exceeds the search incumbent (overrides -eval-policy)")
		stages     = flag.Int("stages", 0, "split each sample into this many geometric stages with an early-stop check between them (0/1 = unstaged; overrides -eval-policy)")
		stageEps   = flag.Float64("stage-epsilon", 0, "staged early-stop target: stop once the eq.-3 confidence half-width is below this fraction of the mean (0 = no early stop; overrides -eval-policy)")
		fcache     = flag.Bool("fcache", false, "memoize F values by decomposition set across searches and jobs (overrides -eval-policy)")
		maxConc    = flag.Int("max-concurrent-evals", 0, "neighborhood-parallel search: evaluate up to this many candidate sets concurrently per neighborhood (0 = sequential; 1 = scheduler, bit-identical to sequential)")
		stopOnSat  = flag.Bool("stop-on-sat", true, "in solve mode, stop at the first satisfiable subproblem")
		timeout    = flag.Duration("timeout", 0, "overall wall-clock limit (0 = none)")
		steal      = flag.Bool("steal", false, "with -listen, let the leader steal queued subproblems from backlogged workers for drained ones (also enables variance-aware batch sizing)")
		speculate  = flag.Bool("speculate", false, "with -listen, duplicate the last unfinished subproblems of a batch onto idle workers; the first result wins (also enables variance-aware batch sizing)")
		listen     = flag.String("listen", "", "act as cluster leader: listen for remote workers on this address and dispatch all subproblems to them")
		join       = flag.String("join", "", "act as remote cluster worker: connect to a leader at this address and serve subproblems (-workers slots)")
		minWorkers = flag.Int("min-workers", 1, "with -listen, wait for this many remote workers before starting")
		serve      = flag.String("serve", "", "serve the job API over HTTP on this address (e.g. :8080) instead of running one -mode; combines with -listen")
	)
	flag.Parse()

	ctx, cancel := signalContext(*timeout)
	defer cancel()

	if *join != "" {
		if *listen != "" {
			return fmt.Errorf("-listen and -join are mutually exclusive")
		}
		return runWorker(ctx, *join, *workers)
	}

	costMetric, err := parseMetric(*metric)
	if err != nil {
		return err
	}

	problem, err := buildProblem(*cnfPath, *startList, *generator, *keystream, *known, *seed)
	if err != nil {
		return err
	}

	// Flags explicitly set on the command line override the -eval-policy
	// preset in both directions (e.g. -eval-policy default -prune=false
	// disables only the pruning).
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	policy, err := buildPolicy(*evalPolicy, policyFlags{
		prune:    *prune,
		stages:   *stages,
		epsilon:  *stageEps,
		cache:    *fcache,
		explicit: explicit,
	})
	if err != nil {
		return err
	}
	policy.MaxConcurrentEvals = *maxConc

	cfg := pdsat.Config{
		Runner: pdsat.RunnerConfig{
			SampleSize:       *samples,
			Workers:          *workers,
			Seed:             *seed,
			CostMetric:       costMetric,
			SolverOptions:    solver.DefaultOptions(),
			SubproblemBudget: solver.Budget{MaxConflicts: *budget},
			Policy:           policy,
			Steal:            *steal,
			Speculate:        *speculate,
		},
		Search: pdsat.SearchOptions{Seed: *seed, MaxEvaluations: *evals},
		Cores:  *cores,
	}

	// With -listen, cluster worker churn is forwarded into the event
	// streams of whatever jobs are running once the session exists.
	var sessionRef atomic.Pointer[pdsat.Session]
	if *listen != "" {
		leader, lerr := cluster.Listen(*listen, problem.Formula, cluster.LeaderOptions{
			SolverOptions: cfg.Runner.SolverOptions,
			Logf:          logToStderr,
			OnWorkerJoined: func(name string, slots int) {
				if s := sessionRef.Load(); s != nil {
					s.PublishWorkerJoined(name, slots)
				}
			},
			OnWorkerLost: func(name string, requeued int) {
				if s := sessionRef.Load(); s != nil {
					s.PublishWorkerLost(name, requeued)
				}
			},
			OnTaskStolen: func(name string, tasks int) {
				if s := sessionRef.Load(); s != nil {
					s.PublishTaskStolen(name, tasks)
				}
			},
			OnSpeculationWon: func(name string, tasks int) {
				if s := sessionRef.Load(); s != nil {
					s.PublishSpeculationWon(name, tasks)
				}
			},
		})
		if lerr != nil {
			return lerr
		}
		defer leader.Close()
		fmt.Printf("cluster: leader listening on %s, waiting for %d worker(s)\n",
			leader.Addr(), *minWorkers)
		if werr := leader.WaitForWorkers(ctx, *minWorkers); werr != nil {
			return werr
		}
		fmt.Printf("cluster: %d worker(s) joined, %d slot(s) total\n",
			leader.WorkerCount(), leader.Workers())
		if *steal || *speculate {
			fmt.Printf("adaptive dispatch: steal=%v speculate=%v (variance-aware batching on)\n",
				*steal, *speculate)
		}
		cfg.Runner.Transport = leader
	}

	session, err := pdsat.NewSession(problem, cfg)
	if err != nil {
		return err
	}
	sessionRef.Store(session)

	vars := problem.StartSet
	if *setList != "" {
		vars, err = parseVars(*setList)
		if err != nil {
			return err
		}
	}

	fmt.Printf("instance %s: %d variables, %d clauses, start set of %d variables\n",
		problem.Name, problem.Formula.NumVars, problem.Formula.NumClauses(), len(problem.StartSet))
	if policy.Enabled() {
		fmt.Printf("evaluation policy: prune=%v stages=%d epsilon=%g gamma=%g fcache=%v max-concurrent-evals=%d\n",
			policy.Prune, policy.Stages, policy.Epsilon, policy.EffectiveGamma(), policy.Cache, policy.MaxConcurrentEvals)
	}

	if *serve != "" {
		return runServe(ctx, session, *serve)
	}

	if *fleetSpec != "" {
		return runFleet(ctx, session, fleetFlags{
			spec:       *fleetSpec,
			seed:       *seed,
			evals:      *evals,
			targetF:    *targetF,
			jitter:     *jitter,
			keepRacing: *keepRacing,
		}, costMetric)
	}

	switch *mode {
	case "estimate":
		return runEstimate(ctx, session, vars, costMetric)
	case "search":
		return runSearch(ctx, session, *method, costMetric)
	case "solve":
		return runSolve(ctx, session, vars, *stopOnSat, costMetric)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// fleetFlags carries the fleet-mode command line.
type fleetFlags struct {
	spec       string
	seed       int64
	evals      int
	targetF    float64
	jitter     int
	keepRacing bool
}

// runFleet races a fleet of concurrent searches and prints a per-member
// summary table plus the winner's estimate.
func runFleet(ctx context.Context, session *pdsat.Session, f fleetFlags, metric solver.CostMetric) error {
	members, err := pdsat.ParseFleet(f.spec)
	if err != nil {
		return err
	}
	outcome, err := session.SearchFleet(ctx, pdsat.FleetJob{
		Members:        members,
		Seed:           f.seed,
		Jitter:         f.jitter,
		TargetF:        f.targetF,
		MaxEvaluations: f.evals,
		KeepRacing:     f.keepRacing,
	})
	if outcome == nil {
		return err
	}
	if err != nil {
		fmt.Printf("fleet ended with error: %v\n", err)
	}
	fmt.Printf("fleet of %d member(s), root seed %d, wall time %v\n",
		len(outcome.Members), outcome.Seed, outcome.WallTime.Round(time.Millisecond))
	fmt.Printf("%-7s %-20s %-6s %7s %14s  %s\n",
		"member", "method", "|set|", "evals", "best F", "stop")
	for _, m := range outcome.Members {
		if m.Err != "" {
			fmt.Printf("%-7d %-20s %s\n", m.Member, m.Method, "error: "+m.Err)
			continue
		}
		if m.Result == nil {
			continue
		}
		marker := ""
		if m.Member == outcome.BestMember {
			marker = "  <- winner"
		}
		fmt.Printf("%-7d %-20s %-6d %7d %14.6g  %s%s\n",
			m.Member, m.Method, m.Result.BestPoint.Count(), m.Result.Evaluations,
			m.Result.BestValue, m.Result.Stop, marker)
	}
	if outcome.BestMember >= 0 {
		fmt.Printf("best set            %s\n", varsString(outcome.BestVars))
		if outcome.Best != nil {
			printEstimate("winner estimate", outcome.Best, metric)
		}
	} else {
		fmt.Println("no member produced a best set")
	}
	printEngineSummary(session.Stats())
	return nil
}

// runServe exposes the session's job API over HTTP until the context is
// cancelled (SIGINT/SIGTERM or -timeout): submit jobs, stream their typed
// progress events (NDJSON or SSE), fetch results, cancel.  See the pdsat
// package's Server documentation and README.md for the endpoints and a
// curl quickstart.
func runServe(ctx context.Context, session *pdsat.Session, addr string) error {
	httpServer := &http.Server{Addr: addr, Handler: pdsat.NewServer(session)}
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	fmt.Printf("serving job API on http://%s (POST /v1/jobs, GET /v1/jobs/{id}/events, ...)\n", addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutting down: cancelling jobs, draining connections")
	// Cancel the jobs first: open event-stream responses end at their Done
	// event, so Shutdown can actually drain them within its deadline.
	session.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpServer.Shutdown(shutCtx)
}

// runWorker serves subproblems to a remote leader until the context is
// cancelled or the leader shuts the worker down.
func runWorker(ctx context.Context, addr string, workers int) error {
	fmt.Printf("cluster: worker joining leader at %s\n", addr)
	err := cluster.Serve(ctx, addr, cluster.WorkerOptions{
		Capacity: workers,
		Redial:   time.Second,
		Logf:     logToStderr,
	})
	if cluster.IsInterruption(err) {
		// Ctrl-C / -timeout: a clean, operator-requested shutdown.  The
		// leader requeues whatever this worker had in flight.
		fmt.Println("cluster: worker interrupted, shutting down")
		return nil
	}
	return err
}

func logToStderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// policyFlags carries the fine-grained evaluation-policy flag values plus
// the set of flag names the user explicitly passed, so an explicit
// -prune=false or -stages 0 can switch a preset mechanism *off* (a flag
// left at its default changes nothing).
type policyFlags struct {
	prune    bool
	stages   int
	epsilon  float64
	cache    bool
	explicit map[string]bool
}

// buildPolicy combines the -eval-policy preset with the fine-grained
// override flags into the evaluation policy used by the session.
func buildPolicy(preset string, f policyFlags) (pdsat.EvalPolicy, error) {
	var policy pdsat.EvalPolicy
	switch preset {
	case "", "off":
		// The zero policy: full-sample evaluations, no memoization —
		// bit-identical to the classic pipeline.
	case "default":
		policy = pdsat.DefaultEvalPolicy()
	default:
		return policy, fmt.Errorf("unknown -eval-policy %q (want off or default)", preset)
	}
	if f.explicit["prune"] {
		policy.Prune = f.prune
	}
	if f.explicit["stages"] {
		policy.Stages = f.stages
	}
	if f.explicit["stage-epsilon"] {
		policy.Epsilon = f.epsilon
	}
	if f.explicit["fcache"] {
		policy.Cache = f.cache
	}
	return policy, policy.Validate()
}

func buildProblem(cnfPath, startList, generator string, keystream, known int, seed int64) (*pdsat.Problem, error) {
	if cnfPath != "" {
		f, err := cnf.ParseDIMACSFile(cnfPath)
		if err != nil {
			return nil, err
		}
		if startList == "" {
			return nil, fmt.Errorf("-start is required with -cnf")
		}
		start, err := parseVars(startList)
		if err != nil {
			return nil, err
		}
		return pdsat.FromFormula(cnfPath, f, start), nil
	}
	gen, err := encoder.ByName(generator)
	if err != nil {
		return nil, err
	}
	inst, err := encoder.NewInstance(gen, encoder.Config{
		KeystreamLen: keystream,
		KnownSuffix:  known,
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	return pdsat.FromInstance(inst), nil
}

func runEstimate(ctx context.Context, session *pdsat.Session, vars []cnf.Var, metric solver.CostMetric) error {
	est, err := session.EstimateSet(ctx, vars)
	if est == nil {
		return err
	}
	label := "predictive function"
	if est.Interrupted {
		fmt.Println("interrupted — partial estimate from the completed subproblems:")
		label = "partial predictive function"
	}
	printEstimate(label, est, metric)
	return nil
}

func runSearch(ctx context.Context, session *pdsat.Session, method string, metric solver.CostMetric) error {
	start := time.Now()
	outcome, err := session.SearchFrom(ctx, method, session.Space().FullPoint())
	if err != nil {
		return err
	}
	if outcome.Result.Stop == pdsat.StopContext {
		fmt.Println("interrupted — partial search report:")
	}
	fmt.Printf("search method       %s\n", outcome.Method)
	fmt.Printf("points evaluated    %d\n", outcome.Result.Evaluations)
	fmt.Printf("stop reason         %s\n", outcome.Result.Stop)
	fmt.Printf("search wall time    %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("best |set|          %d\n", outcome.Result.BestPoint.Count())
	fmt.Printf("best set            %s\n", varsString(outcome.Result.BestPoint.SortedVars()))
	if outcome.Best != nil {
		label := "best-set estimate"
		if outcome.Best.Interrupted {
			label = "best-set estimate (partial, interrupted)"
		}
		printEstimate(label, outcome.Best, metric)
	}
	printEngineSummary(session.Stats())
	return nil
}

func runSolve(ctx context.Context, session *pdsat.Session, vars []cnf.Var, stopOnSat bool, metric solver.CostMetric) error {
	report, err := session.SolveWithSet(ctx, vars, pdsat.SolveOptions{StopOnSat: stopOnSat})
	if err != nil {
		return err
	}
	if report.Interrupted {
		fmt.Println("interrupted — partial solving report:")
	}
	fmt.Printf("subproblems solved  %d\n", report.Processed)
	fmt.Printf("total cost          %.6g %s\n", report.TotalCost, metric)
	fmt.Printf("cost to first SAT   %.6g %s\n", report.CostToFirstSat, metric)
	fmt.Printf("wall time           %v\n", report.WallTime.Round(time.Millisecond))
	if report.FoundSat {
		fmt.Printf("satisfiable subproblem found at index %d\n", report.SatIndex)
		if inst := session.Problem().Instance; inst != nil {
			gen, err := encoder.ByName(inst.Generator)
			if err == nil {
				ok, err := inst.CheckRecoveredState(gen, report.Model)
				fmt.Printf("recovered state reproduces keystream: %v (err=%v)\n", ok, err)
			}
		}
	} else {
		fmt.Println("no satisfiable subproblem found")
	}
	return nil
}

// printEngineSummary reports the session's evaluation-engine and solver-core
// counters after a search, when there is anything interesting to report.
func printEngineSummary(stats pdsat.SessionStats) {
	if stats.PrunedEvaluations > 0 || stats.Cache.Hits+stats.Cache.Misses > 0 {
		fmt.Printf("evaluation engine   %d evaluations (%d pruned), %d subproblems solved, %d aborted, F-cache %d/%d hits\n",
			stats.Evaluations, stats.PrunedEvaluations, stats.SubproblemsSolved, stats.SubproblemsAborted,
			stats.Cache.Hits, stats.Cache.Hits+stats.Cache.Misses)
	}
	if sv := stats.Solver; sv.Conflicts > 0 || sv.Propagations > 0 {
		fmt.Printf("solver core         %d conflicts, %d learned (%d core / %d mid / %d local LBD), %d DB reductions, arena peak %.1f KiB\n",
			sv.Conflicts, sv.Learned, sv.LearnedCore, sv.LearnedMid, sv.LearnedLocal,
			sv.ReduceDBs, float64(sv.ArenaBytes)/1024)
	}
}

func printEstimate(label string, est *pdsat.SetEstimate, metric solver.CostMetric) {
	fmt.Printf("%s:\n", label)
	fmt.Printf("  |set|              %d\n", len(est.Vars))
	fmt.Printf("  sample size N      %d\n", est.Estimate.SampleSize)
	fmt.Printf("  mean subproblem    %.6g %s\n", est.Estimate.Mean, metric)
	fmt.Printf("  F (1 core)         %.6e %s\n", est.Estimate.Value, metric)
	fmt.Printf("  F (%d cores)      %.6e %s\n", est.Cores, est.PerCores, metric)
	fmt.Printf("  SAT in sample      %d of %d\n", est.SatisfiableSamples, est.Estimate.SampleSize)
	fmt.Printf("  estimation time    %v\n", est.WallTime.Round(time.Millisecond))
}

func parseMetric(s string) (solver.CostMetric, error) {
	switch s {
	case "conflicts":
		return solver.CostConflicts, nil
	case "propagations":
		return solver.CostPropagations, nil
	case "decisions":
		return solver.CostDecisions, nil
	case "seconds", "time":
		return solver.CostWallTime, nil
	default:
		return 0, fmt.Errorf("unknown cost metric %q", s)
	}
}

func parseVars(list string) ([]cnf.Var, error) {
	var out []cnf.Var
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad variable %q", part)
		}
		out = append(out, cnf.Var(n))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty variable list")
	}
	return out, nil
}

func varsString(vars []cnf.Var) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = strconv.Itoa(int(v))
	}
	return strings.Join(parts, ",")
}

// signalContext returns a context cancelled by SIGINT/SIGTERM and optionally
// by a timeout.
func signalContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	return ctx, func() { stop(); cancel() }
}
