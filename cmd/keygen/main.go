// Command keygen generates cryptanalysis SAT instances for the A5/1, Bivium
// and Grain keystream generators: it draws a random secret state, produces a
// keystream with the reference implementation, encodes the generator circuit
// with the Tseitin transformation and writes the resulting DIMACS CNF (the
// Transalg-equivalent step of the paper).
//
// Usage:
//
//	keygen -generator bivium -keystream 200 -known 0 -seed 1 -o bivium.cnf
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/paper-repro/pdsat-go/internal/crypto"
	"github.com/paper-repro/pdsat-go/internal/encoder"
)

func main() {
	var (
		generator = flag.String("generator", "bivium", "keystream generator: a5/1, bivium or grain")
		keystream = flag.Int("keystream", 0, "observed keystream length (0 = the paper's default)")
		known     = flag.Int("known", 0, "number of trailing state bits fixed to their secret values (the BiviumK/GrainK weakening)")
		seed      = flag.Int64("seed", 1, "random seed for the secret state")
		output    = flag.String("o", "", "output DIMACS file (default: stdout)")
		secret    = flag.Bool("print-secret", false, "print the secret state and keystream to stderr")
	)
	flag.Parse()

	gen, err := encoder.ByName(*generator)
	if err != nil {
		fmt.Fprintf(os.Stderr, "keygen: %v\n", err)
		os.Exit(2)
	}
	inst, err := encoder.NewInstance(gen, encoder.Config{
		KeystreamLen: *keystream,
		KnownSuffix:  *known,
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "keygen: %v\n", err)
		os.Exit(2)
	}

	if *secret {
		fmt.Fprintf(os.Stderr, "c instance  %s\n", inst.Name)
		fmt.Fprintf(os.Stderr, "c secret    %s\n", crypto.BitsToString(inst.Secret))
		fmt.Fprintf(os.Stderr, "c keystream %s\n", crypto.BitsToString(inst.Keystream))
		fmt.Fprintf(os.Stderr, "c start variables 1..%d (unknown: first %d)\n",
			len(inst.StartVars), len(inst.UnknownStartVars()))
	}

	if *output == "" {
		if err := inst.CNF.WriteDIMACS(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "keygen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := inst.CNF.WriteDIMACSFile(*output); err != nil {
		fmt.Fprintf(os.Stderr, "keygen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d variables, %d clauses (%d start variables, %d known)\n",
		*output, inst.CNF.NumVars, inst.CNF.NumClauses(), len(inst.StartVars), inst.KnownSuffix)
}
