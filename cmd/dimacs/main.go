// Command dimacs is a standalone CDCL SAT solver for DIMACS CNF files, built
// on the library's solver package.  It prints the conventional "s
// SATISFIABLE / s UNSATISFIABLE" result line, optionally the model, and the
// search statistics.
//
// Usage:
//
//	dimacs [flags] [file.cnf]
//
// With no file argument the formula is read from standard input.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

func main() {
	var (
		maxConflicts = flag.Uint64("max-conflicts", 0, "stop after this many conflicts (0 = unlimited)")
		maxTime      = flag.Duration("max-time", 0, "stop after this wall-clock duration (0 = unlimited)")
		printModel   = flag.Bool("model", true, "print the satisfying assignment")
		verify       = flag.Bool("verify", true, "verify the model against the formula before printing")
		quiet        = flag.Bool("quiet", false, "suppress statistics")
	)
	flag.Parse()

	var (
		formula *cnf.Formula
		err     error
	)
	switch flag.NArg() {
	case 0:
		formula, err = cnf.ParseDIMACS(os.Stdin)
	case 1:
		formula, err = cnf.ParseDIMACSFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: dimacs [flags] [file.cnf]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dimacs: %v\n", err)
		os.Exit(2)
	}

	s := solver.NewDefault(formula)
	s.SetBudget(solver.Budget{MaxConflicts: *maxConflicts, MaxTime: *maxTime})
	start := time.Now()
	res := s.Solve()
	elapsed := time.Since(start)

	if !*quiet {
		fmt.Printf("c variables    %d\n", formula.NumVars)
		fmt.Printf("c clauses      %d\n", formula.NumClauses())
		fmt.Printf("c conflicts    %d\n", res.Stats.Conflicts)
		fmt.Printf("c decisions    %d\n", res.Stats.Decisions)
		fmt.Printf("c propagations %d\n", res.Stats.Propagations)
		fmt.Printf("c restarts     %d\n", res.Stats.Restarts)
		fmt.Printf("c learned      %d\n", res.Stats.Learned)
		fmt.Printf("c time         %v\n", elapsed)
	}

	switch res.Status {
	case solver.Sat:
		if *verify && !formula.IsSatisfiedBy(res.Model) {
			fmt.Fprintln(os.Stderr, "dimacs: internal error: reported model does not satisfy the formula")
			os.Exit(1)
		}
		fmt.Println("s SATISFIABLE")
		if *printModel {
			printAssignment(res.Model, formula.NumVars)
		}
		os.Exit(10)
	case solver.Unsat:
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
		os.Exit(0)
	}
}

func printAssignment(model cnf.Assignment, numVars int) {
	fmt.Print("v")
	for v := cnf.Var(1); int(v) <= numVars; v++ {
		lit := int(v)
		if model.Value(v) != cnf.True {
			lit = -lit
		}
		fmt.Printf(" %d", lit)
	}
	fmt.Println(" 0")
}
