// Command experiments regenerates the tables and figures of the paper's
// evaluation section on scaled-down instances (see README.md and PAPER.md
// for the scaling substitutions).
//
// Usage:
//
//	experiments -list
//	experiments -exp table1
//	experiments -exp all -scale quick
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/internal/expts"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expID     = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scaleName = flag.String("scale", "default", "experiment scale: quick, default or paper")
		list      = flag.Bool("list", false, "list available experiments and exit")
		timeout   = flag.Duration("timeout", 0, "overall wall-clock limit (0 = none)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-15s %-22s %s\n", "ID", "PAPER ARTEFACT", "DESCRIPTION")
		for _, e := range expts.Experiments() {
			fmt.Printf("%-15s %-22s %s\n", e.ID, e.Paper, e.Description)
		}
		return nil
	}

	var scale expts.Scale
	switch *scaleName {
	case "quick":
		scale = expts.QuickScale()
	case "default", "laptop":
		scale = expts.DefaultScale()
	case "paper":
		scale = expts.PaperScale()
		fmt.Fprintln(os.Stderr, "warning: the paper scale reproduces the original cluster-sized experiments and will not finish on a workstation")
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
	}
	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer func() { stop(); cancel() }()

	var selected []expts.Experiment
	if *expID == "all" {
		selected = expts.Experiments()
	} else {
		e, err := expts.FindExperiment(*expID)
		if err != nil {
			return err
		}
		selected = []expts.Experiment{e}
	}

	for _, e := range selected {
		fmt.Printf("### %s (%s) — scale %q\n\n", e.ID, e.Paper, scale.Name)
		start := time.Now()
		tables, err := e.Run(ctx, scale)
		// On Ctrl-C (or -timeout) still print whatever the experiment
		// produced before the interrupt, then stop cleanly: a partial
		// report beats a bare error after minutes of computation.
		interrupted := err != nil && cluster.IsInterruption(err)
		if err != nil && !interrupted {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Write(os.Stdout); err != nil {
				return err
			}
		}
		if interrupted {
			fmt.Printf("(%s interrupted after %v — results above are partial)\n\n",
				e.ID, time.Since(start).Round(time.Millisecond))
			return nil
		}
		fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
